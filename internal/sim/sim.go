// Package sim provides the synchronous store-and-forward network
// simulator on which the paper's communication tasks (multinode
// broadcast and total exchange) are executed and timed.
//
// The simulator replaces the 1999-era multiprocessor testbed: nodes
// are the k! permutations of a Cayley network, links are the labeled
// generator ports, and time advances in synchronous rounds.  One round
// = one packet transmission per available link, matching the paper's
// communication models:
//
//   - all-port: every node may use all its outgoing links per round;
//   - single-port: every node may use at most one outgoing link;
//   - single-dimension (SDC): all nodes must use the same generator.
package sim

import (
	"errors"
	"fmt"

	"supercayley/internal/gens"
	"supercayley/internal/graph"
	"supercayley/internal/perm"
)

// Net is an enumerated Cayley network with port-labeled neighbor
// tables (port p = generator index p of the defining set).
type Net struct {
	name string
	k    int
	n    int
	set  *gens.Set
	// nbr[p][v] is the node reached from v through port p.
	nbr [][]int32
}

// MaxSimNodes bounds the networks we are willing to enumerate for
// simulation: 8! = 40320 fits, 9! = 362880 does not.
const MaxSimNodes = 45000

// ErrTooLarge is the sentinel matched by errors.Is when a network is
// too large to enumerate for simulation.
var ErrTooLarge = errors.New("sim: network exceeds MaxSimNodes")

// TooLargeError reports the network that exceeded MaxSimNodes; it
// matches ErrTooLarge under errors.Is and carries the exact sizes.
type TooLargeError struct {
	Name  string
	Nodes int64
	Limit int
}

// Error renders the failure with its sizes.
func (e *TooLargeError) Error() string {
	return fmt.Sprintf("sim: %s has %d nodes, above limit %d", e.Name, e.Nodes, e.Limit)
}

// Is matches ErrTooLarge.
func (e *TooLargeError) Is(target error) bool { return target == ErrTooLarge }

// FromSet enumerates the Cayley network of a generator set.  Networks
// beyond MaxSimNodes return a *TooLargeError (errors.Is(err,
// ErrTooLarge)) before any enumeration work happens.
func FromSet(name string, set *gens.Set) (*Net, error) {
	k := set.K()
	total := perm.Factorial(k)
	if total > MaxSimNodes {
		return nil, &TooLargeError{Name: name, Nodes: total, Limit: MaxSimNodes}
	}
	n := int(total)
	d := set.Len()
	nt := &Net{name: name, k: k, n: n, set: set, nbr: make([][]int32, d)}
	for p := 0; p < d; p++ {
		nt.nbr[p] = make([]int32, n)
	}
	buf := make(perm.Perm, k)
	var rank int64
	perm.All(k, func(pm perm.Perm) bool {
		for p := 0; p < d; p++ {
			set.At(p).ApplyInto(buf, pm)
			nt.nbr[p][rank] = int32(buf.Rank())
		}
		rank++
		return true
	})
	return nt, nil
}

// Name returns the network's display name.
func (nt *Net) Name() string { return nt.name }

// N returns the number of nodes.
func (nt *Net) N() int { return nt.n }

// K returns the number of permutation symbols.
func (nt *Net) K() int { return nt.k }

// Ports returns the out-degree.
func (nt *Net) Ports() int { return len(nt.nbr) }

// Set returns the defining generator set.
func (nt *Net) Set() *gens.Set { return nt.set }

// Neighbor returns the node reached from v through port p.
func (nt *Net) Neighbor(v, p int) int { return int(nt.nbr[p][v]) }

// PortOf returns the port index of a generator (by name, then by
// action), or -1.
func (nt *Net) PortOf(g gens.Generator) int { return nt.set.Index(g) }

// CSR materializes the network as a compressed-sparse-row graph with
// arcs in port order, so that arc index i of node v is exactly port i
// — the mapping the fault-reachability queries rely on.
func (nt *Net) CSR() *graph.CSR {
	n, d := nt.n, len(nt.nbr)
	offsets := make([]int64, n+1)
	edges := make([]int32, int64(n)*int64(d))
	for v := 0; v <= n; v++ {
		offsets[v] = int64(v) * int64(d)
	}
	for p := 0; p < d; p++ {
		for v := 0; v < n; v++ {
			edges[int64(v)*int64(d)+int64(p)] = nt.nbr[p][v]
		}
	}
	return graph.NewCSR(nt.name, offsets, edges)
}

// Model selects the communication model.
type Model int

const (
	// AllPort: all links usable every round.
	AllPort Model = iota
	// SinglePort: one outgoing link per node per round.
	SinglePort
	// SDC: all nodes restricted to one common generator per round,
	// cycling round-robin through the ports.
	SDC
)

// String names the communication model.
func (m Model) String() string {
	switch m {
	case AllPort:
		return "all-port"
	case SinglePort:
		return "single-port"
	case SDC:
		return "single-dimension"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// LinkStats summarizes per-link traffic, supporting the paper's claim
// that traffic is uniform within a constant factor across links.
// Idle counts links an algorithm never uses (e.g. emulation routing on
// IS networks never traverses the I_k⁻¹ link); Min/Max/Ratio describe
// the links that do carry traffic.
type LinkStats struct {
	Min, Max int // over links with nonzero traffic
	Mean     float64
	Idle     int
}

// Ratio returns Max/Min over the links that carry traffic.
func (ls LinkStats) Ratio() float64 {
	if ls.Min == 0 {
		return 1
	}
	return float64(ls.Max) / float64(ls.Min)
}

func statsOf(uses []int) LinkStats {
	if len(uses) == 0 {
		return LinkStats{}
	}
	ls := LinkStats{}
	sum := 0
	for _, u := range uses {
		if u == 0 {
			ls.Idle++
			continue
		}
		if ls.Min == 0 || u < ls.Min {
			ls.Min = u
		}
		if u > ls.Max {
			ls.Max = u
		}
		sum += u
	}
	ls.Mean = float64(sum) / float64(len(uses))
	return ls
}
