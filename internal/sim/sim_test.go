package sim

import (
	"testing"

	"supercayley/internal/gens"
	"supercayley/internal/perm"
)

func starSet(t *testing.T, k int) *gens.Set {
	t.Helper()
	gs := make([]gens.Generator, 0, k-1)
	for i := 2; i <= k; i++ {
		gs = append(gs, gens.Transposition(k, i))
	}
	return gens.MustNewSet(gs...)
}

func starNet(t *testing.T, k int) *Net {
	t.Helper()
	nt, err := FromSet("star", starSet(t, k))
	if err != nil {
		t.Fatal(err)
	}
	return nt
}

func TestFromSetNeighborTables(t *testing.T) {
	nt := starNet(t, 4)
	if nt.N() != 24 || nt.Ports() != 3 || nt.K() != 4 {
		t.Fatalf("params wrong: N=%d ports=%d", nt.N(), nt.Ports())
	}
	// Neighbor tables must agree with generator application.
	set := nt.Set()
	for v := 0; v < nt.N(); v++ {
		p := perm.Unrank(4, int64(v))
		for port := 0; port < nt.Ports(); port++ {
			want := int(set.At(port).Apply(p).Rank())
			if nt.Neighbor(v, port) != want {
				t.Fatalf("neighbor(%d,%d) = %d, want %d", v, port, nt.Neighbor(v, port), want)
			}
		}
	}
}

func TestFromSetSizeLimit(t *testing.T) {
	if _, err := FromSet("too-big", starSet(t, 9)); err == nil {
		t.Fatal("9! = 362880 nodes should exceed the simulation limit")
	}
}

func TestBitsetOps(t *testing.T) {
	b := newBitset(130)
	if b.full(130) {
		t.Fatal("empty bitset full")
	}
	for i := 0; i < 130; i++ {
		b.set(i)
	}
	if !b.full(130) {
		t.Fatal("all-set bitset not full")
	}
	if !b.has(129) || b.has(130) == true && false {
		t.Fatal("has wrong")
	}
	a := newBitset(130)
	a.set(77)
	a.set(5)
	if got := firstMissing(a, newBitset(130), 130); got != 5 {
		t.Fatalf("firstMissing = %d, want 5", got)
	}
	c := newBitset(130)
	c.set(5)
	if got := firstMissing(a, c, 130); got != 77 {
		t.Fatalf("firstMissing = %d, want 77", got)
	}
	if got := firstMissing(a, a, 130); got != -1 {
		t.Fatalf("firstMissing identical = %d, want -1", got)
	}
}

func TestMNBAllPortCompletesNearLowerBound(t *testing.T) {
	nt := starNet(t, 5)
	res, err := MNB(nt, AllPort)
	if err != nil {
		t.Fatal(err)
	}
	lb := MNBLowerBound(nt.N(), nt.Ports(), AllPort)
	if res.Rounds < lb {
		t.Fatalf("rounds %d below lower bound %d", res.Rounds, lb)
	}
	if res.Rounds > 4*lb {
		t.Errorf("rounds %d more than 4× lower bound %d — gossip unexpectedly slow", res.Rounds, lb)
	}
	// Every packet crosses every link at most ... total sends at least
	// N(N-1) receptions.
	if res.Sends < int64(nt.N())*int64(nt.N()-1) {
		t.Errorf("only %d sends; each node must receive N-1 packets", res.Sends)
	}
}

func TestMNBSDCCompletesNearLowerBound(t *testing.T) {
	nt := starNet(t, 5)
	res, err := MNB(nt, SDC)
	if err != nil {
		t.Fatal(err)
	}
	lb := MNBLowerBound(nt.N(), nt.Ports(), SDC) // N-1
	if res.Rounds < lb {
		t.Fatalf("rounds %d below lower bound %d", res.Rounds, lb)
	}
	if res.Rounds > 4*lb {
		t.Errorf("SDC rounds %d more than 4× lower bound %d", res.Rounds, lb)
	}
}

func TestMNBSinglePortCompletes(t *testing.T) {
	nt := starNet(t, 5)
	res, err := MNB(nt, SinglePort)
	if err != nil {
		t.Fatal(err)
	}
	lb := MNBLowerBound(nt.N(), nt.Ports(), SinglePort)
	if res.Rounds < lb || res.Rounds > 6*lb {
		t.Errorf("single-port rounds %d vs lower bound %d", res.Rounds, lb)
	}
}

func TestMNBTrafficUniform(t *testing.T) {
	// The paper claims traffic is balanced within a constant factor on
	// vertex-symmetric networks.
	nt := starNet(t, 5)
	res, err := MNB(nt, AllPort)
	if err != nil {
		t.Fatal(err)
	}
	if res.LinkStats.Ratio() > 3.0 {
		t.Errorf("link traffic ratio %.2f — not uniform within a small constant", res.LinkStats.Ratio())
	}
}

func TestMNBMemoryGuard(t *testing.T) {
	nt := starNet(t, 8)
	if _, err := MNB(nt, AllPort); err == nil {
		t.Skip("8-star MNB fits in the memory budget on this build")
	}
}

func TestTEStarCompletes(t *testing.T) {
	nt := starNet(t, 5)
	k := 5
	route := func(src, dst int) ([]int, error) {
		u, v := perm.Unrank(k, int64(src)), perm.Unrank(k, int64(dst))
		// Greedy star routing: reuse the generator set directly.
		cur := u.Clone()
		var ports []int
		for !cur.Equal(v) {
			w := v.Inverse().Compose(cur)
			x := int(w[0])
			j := 0
			if x != 1 {
				j = x
			} else {
				for i := 1; i < k; i++ {
					if int(w[i]) != i+1 {
						j = i + 1
						break
					}
				}
			}
			ports = append(ports, j-2)
			cur = nt.Set().At(j - 2).Apply(cur)
		}
		return ports, nil
	}
	res, err := TE(nt, route)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(nt.N()) * int64(nt.N()-1)
	if res.Delivered != want {
		t.Fatalf("delivered %d of %d", res.Delivered, want)
	}
	lb := TELowerBound(nt.N(), nt.Ports(), res.TotalHops)
	if res.Rounds < lb {
		t.Fatalf("rounds %d below lower bound %d", res.Rounds, lb)
	}
	if res.Rounds > 6*lb {
		t.Errorf("TE rounds %d more than 6× lower bound %d", res.Rounds, lb)
	}
	if res.LinkStats.Ratio() > 4.0 {
		t.Errorf("TE link ratio %.2f not uniform", res.LinkStats.Ratio())
	}
}

func TestTERejectsBadRoutes(t *testing.T) {
	nt := starNet(t, 4)
	if _, err := TE(nt, func(src, dst int) ([]int, error) {
		return nil, nil // empty route
	}); err == nil {
		t.Error("TE accepted empty routes")
	}
	if _, err := TE(nt, func(src, dst int) ([]int, error) {
		return []int{99}, nil
	}); err == nil {
		t.Error("TE accepted invalid port")
	}
}

func TestModelStrings(t *testing.T) {
	if AllPort.String() != "all-port" || SDC.String() != "single-dimension" || SinglePort.String() != "single-port" {
		t.Fatal("model strings wrong")
	}
}

func TestLinkStatsRatio(t *testing.T) {
	ls := statsOf([]int{2, 4, 4, 2})
	if ls.Min != 2 || ls.Max != 4 || ls.Mean != 3 || ls.Ratio() != 2 {
		t.Fatalf("stats wrong: %+v", ls)
	}
	if (LinkStats{}).Ratio() != 1 {
		t.Fatal("empty ratio should be 1")
	}
	withIdle := statsOf([]int{0, 5, 10})
	if withIdle.Idle != 1 || withIdle.Min != 5 || withIdle.Ratio() != 2 {
		t.Fatalf("idle stats wrong: %+v", withIdle)
	}
}
