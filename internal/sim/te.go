package sim

import (
	"fmt"
)

// TEResult reports a simulated total exchange.
type TEResult struct {
	Rounds    int
	Delivered int64
	TotalHops int64
	LinkStats LinkStats
}

// RouteFunc returns the port sequence a packet from src to dst
// follows.
type RouteFunc func(src, dst int) ([]int, error)

// TE simulates the total exchange under the all-port model: every
// node sends one personalized packet to every other node, each packet
// following a fixed route; every (node, port) link carries at most one
// packet per round, excess packets queue FIFO.
func TE(nt *Net, route RouteFunc) (TEResult, error) {
	n, d := nt.N(), nt.Ports()
	total := int64(n) * int64(n-1)
	if total > 2_000_000 {
		return TEResult{}, fmt.Errorf("sim: TE on %s needs %d packets", nt.Name(), total)
	}

	// A packet is its remaining port sequence; packets sit in
	// per-(node,port) FIFO queues.
	type packet struct {
		path []uint8
		pos  int
	}
	queues := make([][]int32, n*d) // packet indices
	packets := make([]packet, 0, total)

	enqueue := func(node int, pktIdx int32) {
		p := &packets[pktIdx]
		port := int(p.path[p.pos])
		queues[node*d+port] = append(queues[node*d+port], pktIdx)
	}

	res := TEResult{}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if dst == src {
				continue
			}
			ports, err := route(src, dst)
			if err != nil {
				return res, fmt.Errorf("sim: TE route %d→%d: %w", src, dst, err)
			}
			if len(ports) == 0 {
				return res, fmt.Errorf("sim: TE route %d→%d is empty", src, dst)
			}
			path := make([]uint8, len(ports))
			for i, p := range ports {
				if p < 0 || p >= d {
					return res, fmt.Errorf("sim: TE route %d→%d uses invalid port %d", src, dst, p)
				}
				path[i] = uint8(p)
			}
			packets = append(packets, packet{path: path})
			res.TotalHops += int64(len(path))
			enqueue(src, int32(len(packets)-1))
		}
	}

	linkUses := make([]int, n*d)
	type arrival struct {
		node int
		pkt  int32
	}
	var arrivals []arrival
	maxRounds := int(res.TotalHops) + 1
	for round := 1; res.Delivered < total; round++ {
		if round > maxRounds {
			return res, fmt.Errorf("sim: TE on %s stalled at round %d", nt.Name(), round)
		}
		arrivals = arrivals[:0]
		moved := false
		for v := 0; v < n; v++ {
			for port := 0; port < d; port++ {
				q := queues[v*d+port]
				if len(q) == 0 {
					continue
				}
				pktIdx := q[0]
				queues[v*d+port] = q[1:]
				moved = true
				linkUses[v*d+port]++
				p := &packets[pktIdx]
				next := nt.Neighbor(v, port)
				p.pos++
				if p.pos == len(p.path) {
					res.Delivered++
				} else {
					arrivals = append(arrivals, arrival{node: next, pkt: pktIdx})
				}
			}
		}
		if !moved {
			return res, fmt.Errorf("sim: TE on %s deadlocked at round %d", nt.Name(), round)
		}
		for _, a := range arrivals {
			enqueue(a.node, a.pkt)
		}
		res.Rounds = round
	}
	res.LinkStats = statsOf(linkUses)
	return res, nil
}

// TELowerBound returns the transmission-capacity lower bound on TE
// rounds: sumDist total packet-hops at n·d transmissions per round
// (all-port).  sumDist is the sum of distances over all ordered pairs.
func TELowerBound(n, d int, sumDist int64) int {
	cap := int64(n) * int64(d)
	return int((sumDist + cap - 1) / cap)
}

// TESDC simulates the total exchange under the single-dimension model:
// round t opens only port t mod d at every node, and each open link
// carries one packet.  Mišić and Jovanović prove the k-star completes
// in (k+1)! + o((k+1)!) rounds; the capacity bound is sumDist/N per
// dimension sweep.
func TESDC(nt *Net, route RouteFunc) (TEResult, error) {
	n, d := nt.N(), nt.Ports()
	total := int64(n) * int64(n-1)
	if total > 2_000_000 {
		return TEResult{}, fmt.Errorf("sim: SDC TE on %s needs %d packets", nt.Name(), total)
	}
	type packet struct {
		path []uint8
		pos  int
	}
	queues := make([][]int32, n*d)
	packets := make([]packet, 0, total)
	enqueue := func(node int, pktIdx int32) {
		p := &packets[pktIdx]
		port := int(p.path[p.pos])
		queues[node*d+port] = append(queues[node*d+port], pktIdx)
	}
	res := TEResult{}
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if dst == src {
				continue
			}
			ports, err := route(src, dst)
			if err != nil || len(ports) == 0 {
				return res, fmt.Errorf("sim: SDC TE route %d→%d invalid: %v", src, dst, err)
			}
			path := make([]uint8, len(ports))
			for i, p := range ports {
				if p < 0 || p >= d {
					return res, fmt.Errorf("sim: SDC TE route %d→%d uses invalid port %d", src, dst, p)
				}
				path[i] = uint8(p)
			}
			packets = append(packets, packet{path: path})
			res.TotalHops += int64(len(path))
			enqueue(src, int32(len(packets)-1))
		}
	}
	linkUses := make([]int, n*d)
	type arrival struct {
		node int
		pkt  int32
	}
	var arrivals []arrival
	maxRounds := int(res.TotalHops)*d + d
	for round := 1; res.Delivered < total; round++ {
		if round > maxRounds {
			return res, fmt.Errorf("sim: SDC TE on %s stalled at round %d", nt.Name(), round)
		}
		port := (round - 1) % d
		arrivals = arrivals[:0]
		for v := 0; v < n; v++ {
			q := queues[v*d+port]
			if len(q) == 0 {
				continue
			}
			pktIdx := q[0]
			queues[v*d+port] = q[1:]
			linkUses[v*d+port]++
			p := &packets[pktIdx]
			next := nt.Neighbor(v, port)
			p.pos++
			if p.pos == len(p.path) {
				res.Delivered++
			} else {
				arrivals = append(arrivals, arrival{node: next, pkt: pktIdx})
			}
		}
		for _, a := range arrivals {
			enqueue(a.node, a.pkt)
		}
		res.Rounds = round
	}
	res.LinkStats = statsOf(linkUses)
	return res, nil
}
