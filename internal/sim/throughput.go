package sim

// Bulk routing throughput: seeded pair workloads (uniform and
// zipfian) and a parallel driver that routes every pair through a
// compact-index routing engine, verifies delivery against the
// network's neighbor tables, and reports pairs-per-second.  This is
// the measurement harness behind `scg bench-routes` and the
// BENCH_routes.json snapshot.

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"supercayley/internal/gens"
	"supercayley/internal/graph"
)

// Workload is a seeded list of (src, dst) node-rank pairs.
type Workload struct {
	Name       string
	Srcs, Dsts []int32
}

// Pairs returns the number of pairs.
func (wl Workload) Pairs() int { return len(wl.Srcs) }

// UniformWorkload draws pairs uniformly over [0, n) with src ≠ dst
// (when n > 1), deterministically from the seed.
func UniformWorkload(n, pairs int, seed int64) Workload {
	srcs, dsts := samplePairs(n, pairs, seed)
	wl := Workload{Name: "uniform", Srcs: make([]int32, pairs), Dsts: make([]int32, pairs)}
	for i := range srcs {
		wl.Srcs[i] = int32(srcs[i])
		wl.Dsts[i] = int32(dsts[i])
	}
	return wl
}

// ZipfWorkload draws pairs with zipfian-skewed endpoints over [0, n)
// (skew s > 1; hotter heads for larger s) with src ≠ dst when n > 1,
// deterministically from the seed.  Skewed endpoints concentrate the
// quotient space too, which is what makes the normalized route cache
// earn its keep on realistic traffic.
func ZipfWorkload(n, pairs int, seed int64, skew float64) Workload {
	if skew <= 1 {
		skew = 1.2
	}
	r := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(r, skew, 1, uint64(n-1))
	wl := Workload{
		Name: fmt.Sprintf("zipf(s=%.2f)", skew),
		Srcs: make([]int32, pairs),
		Dsts: make([]int32, pairs),
	}
	for i := 0; i < pairs; i++ {
		wl.Srcs[i] = int32(z.Uint64())
		wl.Dsts[i] = int32(z.Uint64())
		for n > 1 && wl.Dsts[i] == wl.Srcs[i] {
			wl.Dsts[i] = int32(z.Uint64())
		}
	}
	return wl
}

// PoissonArrivals returns the cumulative arrival offsets of a seeded
// Poisson process at ratePerSec: n independent-exponential gaps, the
// open-loop arrival schedule `scg loadtest` fixes before its run so
// that a slow server cannot slow the offered load down.
func PoissonArrivals(n int, ratePerSec float64, seed int64) []time.Duration {
	if ratePerSec <= 0 {
		panic("sim: PoissonArrivals needs a positive rate")
	}
	r := rand.New(rand.NewSource(seed))
	due := make([]time.Duration, n)
	t := 0.0
	for i := range due {
		t += r.ExpFloat64() / ratePerSec
		due[i] = time.Duration(t * float64(time.Second))
	}
	return due
}

// AppendRouteFunc is the bulk-engine routing contract: append the port
// route from src to dst onto buf and return the extended slice,
// allocating only when buf runs out of capacity.  Port p is generator
// index p of the network's set, so gens.GenIndex doubles as the port
// type (core.CachedRouter.AppendRouteRanks satisfies this shape).
type AppendRouteFunc func(buf []gens.GenIndex, src, dst int) ([]gens.GenIndex, error)

// AsRouteFunc adapts the bulk contract to the per-call RouteFunc the
// TE and fault simulators consume.
func (f AppendRouteFunc) AsRouteFunc() RouteFunc {
	return func(src, dst int) ([]int, error) {
		idx, err := f(make([]gens.GenIndex, 0, 64), src, dst)
		if err != nil {
			return nil, err
		}
		ports := make([]int, len(idx))
		for i, p := range idx {
			ports[i] = int(p)
		}
		return ports, nil
	}
}

// ThroughputOpts tunes a throughput measurement.
type ThroughputOpts struct {
	// Engine labels the measured routing engine in the result.
	Engine string
	// SkipReplay moves the per-route delivery verification OUT of the
	// timed loop: the timed pass routes only, and a second, untimed
	// pass re-routes every pair and replays it through the neighbor
	// tables.  Every pair is still verified — only the clock changes.
	// Use it when comparing engines whose routing cost is small
	// relative to the replay (table/cache warm paths), so the ratio
	// reflects routing, not shared verification overhead.
	SkipReplay bool
}

// ThroughputResult reports a bulk routing run.
type ThroughputResult struct {
	Net      string
	Engine   string
	Workload string
	Pairs    int
	// TotalHops sums route lengths across pairs.
	TotalHops int64
	// Seconds is wall time for the whole batch; PairsPerSec the
	// headline throughput.
	Seconds     float64
	PairsPerSec float64
	// MeanRouteLen is TotalHops / Pairs.
	MeanRouteLen float64
}

// String renders the result on one line.
func (r ThroughputResult) String() string {
	return fmt.Sprintf("routes on %-14s %-12s pairs=%-8d %12.0f pairs/s meanlen=%.2f",
		r.Net, r.Workload, r.Pairs, r.PairsPerSec, r.MeanRouteLen)
}

// Throughput routes every workload pair through the engine, fanned out
// over GOMAXPROCS workers with per-worker route buffers, and verifies
// each route end to end by replaying its ports through the network's
// neighbor tables — a route that does not land on its destination
// fails the run.
func Throughput(nt *Net, route AppendRouteFunc, wl Workload) (ThroughputResult, error) {
	return ThroughputWith(nt, route, wl, ThroughputOpts{})
}

// ThroughputWith is Throughput with options (see ThroughputOpts).
func ThroughputWith(nt *Net, route AppendRouteFunc, wl Workload, opts ThroughputOpts) (ThroughputResult, error) {
	pairs := wl.Pairs()
	if pairs == 0 || len(wl.Dsts) != pairs {
		return ThroughputResult{}, fmt.Errorf("sim: throughput needs a non-empty workload with matching src/dst lists")
	}
	if route == nil {
		return ThroughputResult{}, fmt.Errorf("sim: throughput needs a routing engine")
	}
	n, d := nt.N(), nt.Ports()
	var totalHops int64
	errv := make([]error, graph.Parallelism(pairs))
	t0 := time.Now()
	parallelChunks(pairs, func(worker, lo, hi int) {
		buf := make([]gens.GenIndex, 0, 512)
		var hops int64
		for i := lo; i < hi; i++ {
			src, dst := int(wl.Srcs[i]), int(wl.Dsts[i])
			if src < 0 || src >= n || dst < 0 || dst >= n {
				errv[worker] = fmt.Errorf("sim: workload pair %d (%d, %d) out of range [0, %d)", i, src, dst, n)
				return
			}
			var err error
			buf, err = route(buf[:0], src, dst)
			if err != nil {
				errv[worker] = fmt.Errorf("sim: route %d→%d: %w", src, dst, err)
				return
			}
			if !opts.SkipReplay {
				cur := src
				for _, p := range buf {
					if int(p) >= d {
						errv[worker] = fmt.Errorf("sim: route %d→%d uses invalid port %d", src, dst, p)
						return
					}
					cur = nt.Neighbor(cur, int(p))
				}
				if cur != dst {
					errv[worker] = fmt.Errorf("sim: route %d→%d delivers to %d", src, dst, cur)
					return
				}
			}
			hops += int64(len(buf))
		}
		atomic.AddInt64(&totalHops, hops)
	})
	elapsed := time.Since(t0)
	seconds := elapsed.Seconds()
	for _, err := range errv {
		if err != nil {
			return ThroughputResult{}, err
		}
	}
	if opts.SkipReplay {
		// The clock stopped; now verify every pair by re-routing and
		// replaying outside the measurement.
		parallelChunks(pairs, func(worker, lo, hi int) {
			buf := make([]gens.GenIndex, 0, 512)
			for i := lo; i < hi; i++ {
				src, dst := int(wl.Srcs[i]), int(wl.Dsts[i])
				var err error
				buf, err = route(buf[:0], src, dst)
				if err != nil {
					errv[worker] = fmt.Errorf("sim: route %d→%d: %w", src, dst, err)
					return
				}
				cur := src
				for _, p := range buf {
					if int(p) >= d {
						errv[worker] = fmt.Errorf("sim: route %d→%d uses invalid port %d", src, dst, p)
						return
					}
					cur = nt.Neighbor(cur, int(p))
				}
				if cur != dst {
					errv[worker] = fmt.Errorf("sim: route %d→%d delivers to %d", src, dst, cur)
					return
				}
			}
		})
		for _, err := range errv {
			if err != nil {
				return ThroughputResult{}, err
			}
		}
	}
	mTputRuns.Inc()
	mTputPairs.Add(uint64(pairs))
	mTputHops.Add(uint64(totalHops))
	hTputRunNs.Observe(0, uint64(elapsed.Nanoseconds()))
	res := ThroughputResult{
		Net:          nt.Name(),
		Engine:       opts.Engine,
		Workload:     wl.Name,
		Pairs:        pairs,
		TotalHops:    totalHops,
		Seconds:      seconds,
		MeanRouteLen: float64(totalHops) / float64(pairs),
	}
	if seconds > 0 {
		res.PairsPerSec = float64(pairs) / seconds
	}
	return res, nil
}
