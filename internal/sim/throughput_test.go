package sim

import (
	"fmt"
	"testing"

	"supercayley/internal/gens"
	"supercayley/internal/perm"
	"supercayley/internal/star"
)

// starAppendRoute is a reference engine for the star network: sort
// v⁻¹∘u to the identity with the greedy cycle algorithm, emitting
// transposition ports.
func starAppendRoute(t *testing.T, nt *Net) AppendRouteFunc {
	t.Helper()
	k := nt.K()
	sg, err := star.New(k)
	if err != nil {
		t.Fatal(err)
	}
	return func(buf []gens.GenIndex, src, dst int) ([]gens.GenIndex, error) {
		u := perm.Unrank(k, int64(src))
		v := perm.Unrank(k, int64(dst))
		for _, g := range sg.Route(u, v) {
			p := nt.PortOf(g)
			if p < 0 {
				return buf, fmt.Errorf("no port for %s", g.Name())
			}
			buf = append(buf, gens.GenIndex(p))
		}
		return buf, nil
	}
}

func TestWorkloadsDeterministicAndInRange(t *testing.T) {
	const n, pairs = 120, 2000
	for _, mk := range []func() Workload{
		func() Workload { return UniformWorkload(n, pairs, 7) },
		func() Workload { return ZipfWorkload(n, pairs, 7, 1.3) },
	} {
		a, b := mk(), mk()
		if a.Pairs() != pairs {
			t.Fatalf("%s: %d pairs, want %d", a.Name, a.Pairs(), pairs)
		}
		for i := 0; i < pairs; i++ {
			if a.Srcs[i] != b.Srcs[i] || a.Dsts[i] != b.Dsts[i] {
				t.Fatalf("%s: pair %d differs between same-seed draws", a.Name, i)
			}
			if a.Srcs[i] < 0 || a.Srcs[i] >= n || a.Dsts[i] < 0 || a.Dsts[i] >= n {
				t.Fatalf("%s: pair %d (%d, %d) out of range", a.Name, i, a.Srcs[i], a.Dsts[i])
			}
			if a.Srcs[i] == a.Dsts[i] {
				t.Fatalf("%s: pair %d has src == dst", a.Name, i)
			}
		}
	}
	// Different seeds must differ somewhere.
	a, b := ZipfWorkload(n, pairs, 7, 1.3), ZipfWorkload(n, pairs, 8, 1.3)
	same := true
	for i := 0; i < pairs && same; i++ {
		same = a.Srcs[i] == b.Srcs[i] && a.Dsts[i] == b.Dsts[i]
	}
	if same {
		t.Fatal("different seeds produced identical workloads")
	}
}

func TestZipfWorkloadIsSkewed(t *testing.T) {
	// The head node must draw far more than its uniform share.
	const n, pairs = 720, 5000
	wl := ZipfWorkload(n, pairs, 3, 1.4)
	head := 0
	for i := 0; i < pairs; i++ {
		if wl.Srcs[i] == 0 {
			head++
		}
	}
	if uniformShare := pairs / n; head < 10*uniformShare {
		t.Fatalf("head node drawn %d times, uniform share is %d — not skewed", head, uniformShare)
	}
}

func TestThroughputRoutesAndVerifies(t *testing.T) {
	nt := starNet(t, 5)
	wl := UniformWorkload(nt.N(), 3000, 9)
	res, err := Throughput(nt, starAppendRoute(t, nt), wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs != wl.Pairs() || res.TotalHops <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
	if res.MeanRouteLen <= 0 || res.MeanRouteLen > float64(perm.StarDiameter(5)) {
		t.Fatalf("mean route length %.2f outside (0, %d]", res.MeanRouteLen, perm.StarDiameter(5))
	}
}

func TestThroughputRejectsBadRoutes(t *testing.T) {
	nt := starNet(t, 4)
	wl := UniformWorkload(nt.N(), 50, 2)

	// Engine that never moves: delivery check must fail.
	stay := func(buf []gens.GenIndex, src, dst int) ([]gens.GenIndex, error) { return buf, nil }
	if _, err := Throughput(nt, stay, wl); err == nil {
		t.Fatal("undelivered routes accepted")
	}
	// Engine that uses an out-of-range port.
	wild := func(buf []gens.GenIndex, src, dst int) ([]gens.GenIndex, error) {
		return append(buf, gens.GenIndex(nt.Ports())), nil
	}
	if _, err := Throughput(nt, wild, wl); err == nil {
		t.Fatal("invalid port accepted")
	}
	// Out-of-range workload.
	bad := Workload{Name: "bad", Srcs: []int32{0}, Dsts: []int32{int32(nt.N())}}
	if _, err := Throughput(nt, starAppendRoute(t, nt), bad); err == nil {
		t.Fatal("out-of-range workload accepted")
	}
	if _, err := Throughput(nt, starAppendRoute(t, nt), Workload{}); err == nil {
		t.Fatal("empty workload accepted")
	}
	if _, err := Throughput(nt, nil, wl); err == nil {
		t.Fatal("nil engine accepted")
	}
}

func TestAsRouteFuncAdapter(t *testing.T) {
	nt := starNet(t, 5)
	engine := starAppendRoute(t, nt)
	rf := engine.AsRouteFunc()
	wl := UniformWorkload(nt.N(), 100, 4)
	buf := make([]gens.GenIndex, 0, 64)
	for i := 0; i < wl.Pairs(); i++ {
		src, dst := int(wl.Srcs[i]), int(wl.Dsts[i])
		var err error
		buf, err = engine(buf[:0], src, dst)
		if err != nil {
			t.Fatal(err)
		}
		ports, err := rf(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if len(ports) != len(buf) {
			t.Fatalf("pair %d: adapter %d ports, engine %d", i, len(ports), len(buf))
		}
		for j := range ports {
			if ports[j] != int(buf[j]) {
				t.Fatalf("pair %d port %d: %d != %d", i, j, ports[j], buf[j])
			}
		}
	}
}
