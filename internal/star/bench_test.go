package star

import (
	"math/rand"
	"testing"

	"supercayley/internal/perm"
)

func BenchmarkRoute13Star(b *testing.B) {
	g := MustNew(13)
	r := rand.New(rand.NewSource(1))
	u, v := perm.Random(r, 13), perm.Random(r, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Route(u, v)
	}
}

func BenchmarkDistance13Star(b *testing.B) {
	g := MustNew(13)
	r := rand.New(rand.NewSource(2))
	u, v := perm.Random(r, 13), perm.Random(r, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Distance(u, v)
	}
}

func BenchmarkSortToIdentity(b *testing.B) {
	g := MustNew(13)
	r := rand.New(rand.NewSource(3))
	p := perm.Random(r, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.SortToIdentity(p)
	}
}
