// Package star implements the k-dimensional star graph of Akers,
// Harel and Krishnamurthy — the guest network every super Cayley graph
// in the paper emulates, and the reference point for all slowdown and
// dilation results.
//
// The k-star has k! nodes (the permutations of 1..k) and generator set
// T₂..T_k, where T_i swaps the symbols at positions 1 and i.  Its
// degree is k−1 and its diameter ⌊3(k−1)/2⌋.  Routing is solved by the
// greedy cycle algorithm, which is provably optimal; distances follow
// the closed-form cycle-structure formula (perm.StarDistance).
package star

import (
	"fmt"

	"supercayley/internal/gens"
	"supercayley/internal/graph"
	"supercayley/internal/perm"
)

// Graph is the k-dimensional star graph.
type Graph struct {
	k   int
	set *gens.Set
}

// New returns the k-star, k ≥ 2.
func New(k int) (*Graph, error) {
	if k < 2 || k > perm.MaxK {
		return nil, fmt.Errorf("star: k=%d out of range [2,%d]", k, perm.MaxK)
	}
	gs := make([]gens.Generator, 0, k-1)
	for i := 2; i <= k; i++ {
		gs = append(gs, gens.Transposition(k, i))
	}
	set, err := gens.NewSet(gs...)
	if err != nil {
		return nil, err
	}
	return &Graph{k: k, set: set}, nil
}

// MustNew is New but panics on error.
func MustNew(k int) *Graph {
	g, err := New(k)
	if err != nil {
		panic(err)
	}
	return g
}

// Name returns e.g. "5-star".
func (g *Graph) Name() string { return fmt.Sprintf("%d-star", g.k) }

// K returns the number of symbols.
func (g *Graph) K() int { return g.k }

// N returns the number of nodes, k!.
func (g *Graph) N() int64 { return perm.Factorial(g.k) }

// Degree returns k−1.
func (g *Graph) Degree() int { return g.k - 1 }

// Diameter returns ⌊3(k−1)/2⌋.
func (g *Graph) Diameter() int { return perm.StarDiameter(g.k) }

// Set returns the generator set T₂..T_k.
func (g *Graph) Set() *gens.Set { return g.set }

// Gen returns the dimension-j generator T_j, 2 ≤ j ≤ k.
func (g *Graph) Gen(j int) gens.Generator {
	if j < 2 || j > g.k {
		panic(fmt.Sprintf("star: dimension %d out of range [2,%d]", j, g.k))
	}
	return g.set.At(j - 2)
}

// Neighbors returns the k−1 neighbors of p.
func (g *Graph) Neighbors(p perm.Perm) []perm.Perm {
	out := make([]perm.Perm, g.set.Len())
	for i := range out {
		out[i] = g.set.At(i).Apply(p)
	}
	return out
}

// Distance returns the exact distance between two nodes.
func (g *Graph) Distance(u, v perm.Perm) int {
	return v.Inverse().Compose(u).StarDistance()
}

// SortToIdentity returns an optimal generator sequence carrying w to
// the identity (the greedy cycle algorithm): if the symbol x at
// position 1 is not 1, send it home with T_x; otherwise open any
// non-trivial cycle by fetching a misplaced symbol to position 1.
func (g *Graph) SortToIdentity(w perm.Perm) []gens.Generator {
	if len(w) != g.k {
		panic(fmt.Sprintf("star: SortToIdentity on %d symbols, want %d", len(w), g.k))
	}
	cur := w.Clone()
	var seq []gens.Generator
	for !cur.IsIdentity() {
		x := int(cur[0])
		if x != 1 {
			gx := g.Gen(x)
			seq = append(seq, gx)
			cur = gx.Apply(cur)
			continue
		}
		// Symbol 1 is home: fetch the first misplaced symbol.
		for i := 1; i < g.k; i++ {
			if int(cur[i]) != i+1 {
				gi := g.Gen(i + 1)
				seq = append(seq, gi)
				cur = gi.Apply(cur)
				break
			}
		}
	}
	return seq
}

// Route returns an optimal generator sequence from u to v: the same
// sequence that sorts w = v⁻¹∘u to the identity routes u to v, by
// vertex symmetry.
func (g *Graph) Route(u, v perm.Perm) []gens.Generator {
	return g.SortToIdentity(v.Inverse().Compose(u))
}

// Path materializes the node sequence of Route(u, v), inclusive of
// both endpoints.
func (g *Graph) Path(u, v perm.Perm) []perm.Perm {
	seq := g.Route(u, v)
	path := make([]perm.Perm, 0, len(seq)+1)
	path = append(path, u.Clone())
	cur := u
	for _, gen := range seq {
		cur = gen.Apply(cur)
		path = append(path, cur)
	}
	return path
}

// Cayley returns the enumerated graph view (node IDs = Lehmer ranks),
// refusing graphs above maxNodes when maxNodes > 0.
func (g *Graph) Cayley(maxNodes int64) (*graph.Cayley, error) {
	return graph.NewCayley(g.Name(), g.set, maxNodes)
}
