package star

import (
	"math/rand"
	"testing"

	"supercayley/internal/graph"
	"supercayley/internal/perm"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1); err == nil {
		t.Error("New(1) accepted")
	}
	if _, err := New(perm.MaxK + 1); err == nil {
		t.Error("New(21) accepted")
	}
	g := MustNew(5)
	if g.K() != 5 || g.N() != 120 || g.Degree() != 4 || g.Diameter() != 6 {
		t.Fatalf("5-star params wrong: K=%d N=%d deg=%d diam=%d", g.K(), g.N(), g.Degree(), g.Diameter())
	}
	if g.Name() != "5-star" {
		t.Fatalf("Name = %q", g.Name())
	}
}

func TestNeighborsCount(t *testing.T) {
	g := MustNew(6)
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		p := perm.Random(r, 6)
		nbrs := g.Neighbors(p)
		if len(nbrs) != 5 {
			t.Fatalf("degree %d", len(nbrs))
		}
		seen := map[string]bool{}
		for _, q := range nbrs {
			if seen[q.String()] {
				t.Fatalf("duplicate neighbor %v of %v", q, p)
			}
			seen[q.String()] = true
			if q.Equal(p) {
				t.Fatalf("self loop at %v", p)
			}
		}
	}
}

func TestSortToIdentityOptimal(t *testing.T) {
	// The greedy cycle algorithm must achieve the closed-form
	// distance exactly, for every permutation of k ≤ 7.
	for k := 2; k <= 7; k++ {
		g := MustNew(k)
		perm.All(k, func(p perm.Perm) bool {
			seq := g.SortToIdentity(p)
			if len(seq) != p.StarDistance() {
				t.Fatalf("k=%d %v: greedy %d moves, distance %d", k, p, len(seq), p.StarDistance())
			}
			cur := p.Clone()
			for _, gen := range seq {
				cur = gen.Apply(cur)
			}
			if !cur.IsIdentity() {
				t.Fatalf("k=%d %v: sort did not reach identity (got %v)", k, p, cur)
			}
			return true
		})
	}
}

func TestRouteReachesDestination(t *testing.T) {
	g := MustNew(8)
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 500; trial++ {
		u, v := perm.Random(r, 8), perm.Random(r, 8)
		seq := g.Route(u, v)
		if len(seq) != g.Distance(u, v) {
			t.Fatalf("route length %d != distance %d", len(seq), g.Distance(u, v))
		}
		cur := u.Clone()
		for _, gen := range seq {
			cur = gen.Apply(cur)
		}
		if !cur.Equal(v) {
			t.Fatalf("route from %v to %v ended at %v", u, v, cur)
		}
	}
}

func TestPathEndpoints(t *testing.T) {
	g := MustNew(6)
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		u, v := perm.Random(r, 6), perm.Random(r, 6)
		path := g.Path(u, v)
		if !path[0].Equal(u) || !path[len(path)-1].Equal(v) {
			t.Fatalf("path endpoints wrong: %v", path)
		}
		// Consecutive nodes must be adjacent.
		for i := 1; i < len(path); i++ {
			adjacent := false
			for _, q := range g.Neighbors(path[i-1]) {
				if q.Equal(path[i]) {
					adjacent = true
					break
				}
			}
			if !adjacent {
				t.Fatalf("path step %d not an edge: %v -> %v", i, path[i-1], path[i])
			}
		}
	}
}

func TestDistanceSymmetric(t *testing.T) {
	g := MustNew(7)
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		u, v := perm.Random(r, 7), perm.Random(r, 7)
		if g.Distance(u, v) != g.Distance(v, u) {
			t.Fatalf("distance asymmetric for %v %v", u, v)
		}
	}
}

func TestGenPanics(t *testing.T) {
	g := MustNew(5)
	for _, j := range []int{1, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Gen(%d) did not panic", j)
				}
			}()
			g.Gen(j)
		}()
	}
	if g.Gen(3).Dim() != 3 {
		t.Fatal("Gen(3) wrong dimension")
	}
}

func TestCayleyViewProperties(t *testing.T) {
	g := MustNew(5)
	cg, err := g.Cayley(200)
	if err != nil {
		t.Fatal(err)
	}
	if cg.Order() != 120 {
		t.Fatalf("order %d", cg.Order())
	}
	mat := graph.Materialize(cg)
	if d, ok := graph.IsRegular(mat); !ok || d != 4 {
		t.Fatalf("regularity: d=%d ok=%v", d, ok)
	}
	if !graph.IsUndirected(mat) {
		t.Fatal("star graph should be undirected")
	}
	if diam, _ := graph.Eccentricity(mat, 0); diam != g.Diameter() {
		t.Fatalf("diameter %d, want %d", diam, g.Diameter())
	}
	if !graph.LooksVertexSymmetric(mat, 12) {
		t.Fatal("star graph failed vertex-symmetry profile check")
	}
	// Size limit honored.
	if _, err := g.Cayley(10); err == nil {
		t.Fatal("Cayley(10) should refuse 120-node graph")
	}
}

func TestStarEdgesConnectPermsDifferingByFirstSymbolSwap(t *testing.T) {
	// Structural definition check: u ~ v iff v equals u with
	// positions 1 and i exchanged for some i ≥ 2.
	g := MustNew(5)
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		u := perm.Random(r, 5)
		for _, v := range g.Neighbors(u) {
			diff := 0
			for i := range u {
				if u[i] != v[i] {
					diff++
				}
			}
			if diff != 2 || u[0] == v[0] {
				t.Fatalf("star edge %v ~ %v malformed", u, v)
			}
		}
	}
}
