//go:build !race

// Allocation-regression guards for the table lookup loop, tagged off
// under the race detector (instrumentation inflates every count and
// sync.Pool deliberately drops the router's pooled scratch).

package tables

import (
	"testing"

	"supercayley/internal/core"
	"supercayley/internal/gens"
	"supercayley/internal/perm"
)

// TestDenseLookupAllocFree is the AllocsPerRun==0 guard on the
// table-mode lookup loop: with a preallocated destination, a dense
// walk — digits pass, per-hop byte loads, incremental reranks, and
// the obs counters — must not allocate.
func TestDenseLookupAllocFree(t *testing.T) {
	nw := core.MustNew(core.MS, 7, 1) // k = 8, the benchmark network
	tab, err := Build(nw, Config{Mode: ModeDense})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	w := make(perm.Perm, nw.K())
	src := perm.Unrank(nw.K(), 31337)
	dst := make([]gens.GenIndex, 0, 256)
	if avg := testing.AllocsPerRun(200, func() {
		copy(w, src)
		var ok bool
		dst, ok = tab.AppendQuotientRoute(dst[:0], w)
		if !ok {
			t.Fatal("dense table declined")
		}
	}); avg != 0 {
		t.Fatalf("dense table lookup allocates %.2f objects per call, want 0", avg)
	}
}

// TestRouterTableWarmAllocFree guards the full routing entry point
// with the table installed: rank unranking, quotient formation, table
// walk, and telemetry, end to end through CachedRouter.
func TestRouterTableWarmAllocFree(t *testing.T) {
	nw := core.MustNew(core.MS, 7, 1)
	tab, err := Build(nw, Config{Mode: ModeDense})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	cr, err := core.NewCachedRouterWithTable(nw, core.CacheConfig{}, core.TableConfig{Table: tab})
	if err != nil {
		t.Fatalf("NewCachedRouterWithTable: %v", err)
	}
	dst := make([]gens.GenIndex, 0, 256)
	n := nw.N()
	ranks := make([]int64, 64)
	for i := range ranks {
		ranks[i] = int64(i*977) % n
	}
	for _, rk := range ranks { // warm the scratch pool
		var err error
		if dst, err = cr.AppendRouteRanks(dst[:0], rk, (rk+1)%n); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	if avg := testing.AllocsPerRun(400, func() {
		rk := ranks[i&63]
		i++
		dst, _ = cr.AppendRouteRanks(dst[:0], rk, (rk+1)%n)
	}); avg != 0 {
		t.Fatalf("warm table-mode AppendRouteRanks allocates %.2f objects per call, want 0", avg)
	}
}
