package tables

// Telemetry for table-mode routing, registered on obs.Default,
// mirroring internal/core's pattern: hot-path counters are striped
// atomics paid once per route (not per hop), build costs land in a
// power-of-two histogram, and residency is a callback gauge over a
// roster of live tables so the registry never holds a table alive nor
// the hot path a registry lock.

import (
	"expvar"
	"sync"

	"supercayley/internal/obs"
)

var (
	mTableRoutes = obs.Default.Counter("scg_table_routes_total",
		"routes served end-to-end by precomputed tables")
	mTableSteps = obs.Default.Counter("scg_table_steps_total",
		"generator steps emitted by table-mode walks")
	mRanksBuilt = obs.Default.Counter("scg_table_ranks_built_total",
		"quotient ranks materialized by table builders (dense builds and band faults)")
	mBandsBuilt = obs.Default.Counter("scg_table_bands_built_total",
		"banded-table bands materialized on demand or via Prebuild")
	mBandFaults = obs.Default.Counter("scg_table_band_faults_total",
		"walks that hit an unbuilt band under FaultBuild")
	mDeclines = obs.Default.Counter("scg_table_declines_total",
		"lookups declined to the router (absent start band under FaultDecline or a refused budget)")
	mBudgetRefused = obs.Default.Counter("scg_table_budget_refused_total",
		"band faults refused by the residency budget")
	mSnapshotSaves = obs.Default.Counter("scg_table_snapshot_saves_total",
		"table snapshots written")
	mSnapshotLoads = obs.Default.Counter("scg_table_snapshot_loads_total",
		"table snapshots loaded")
	hBuildNs = obs.Default.Pow2Hist("scg_table_build_ns",
		"wall time of initial table builds, ns")
)

// stFaultIn times synchronous band fault-ins on the route path — the
// classic tail-latency culprit the flight recorder exists to expose.
var stFaultIn = obs.NewStage("table_fault_in")

// liveTables is the census roster behind the callback gauges; every
// Build/Load registers its table.
var liveTables struct {
	mu   sync.Mutex
	list []*Table
}

func registerTable(t *Table) {
	liveTables.mu.Lock()
	liveTables.list = append(liveTables.list, t)
	liveTables.mu.Unlock()
}

// AggregateStats sums the census over every live table.
func AggregateStats() Stats {
	liveTables.mu.Lock()
	tabs := append([]*Table(nil), liveTables.list...)
	liveTables.mu.Unlock()
	agg := Stats{Name: "aggregate"}
	for _, t := range tabs {
		s := t.Stats()
		agg.BandsBuilt += s.BandsBuilt
		agg.BandFaults += s.BandFaults
		agg.BudgetRefused += s.BudgetRefused
		agg.Bytes += s.Bytes
		agg.BudgetBytes += s.BudgetBytes
		agg.BuildNS += s.BuildNS
	}
	return agg
}

func init() {
	obs.Default.GaugeFunc("scg_table_resident_bytes",
		"resident dims bytes across all live tables", func() float64 { return float64(AggregateStats().Bytes) })
	obs.Default.GaugeFunc("scg_table_live",
		"tables built or loaded in this process", func() float64 {
			liveTables.mu.Lock()
			n := len(liveTables.list)
			liveTables.mu.Unlock()
			return float64(n)
		})
	expvar.Publish("scg_tables", expvar.Func(func() any { return AggregateStats() }))
}
