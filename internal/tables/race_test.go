package tables

// Concurrent band-publication tests, written to run under -race: many
// goroutines route through one banded table while bands materialize
// beneath them — FaultBuild readers racing each other's CAS publishes,
// FaultDecline readers racing a Prebuild warmer, and a
// budget-constrained table where mid-walk refusals substitute
// GreedyDim.  In every case a route the table DOES serve must be
// byte-identical to the dense reference: band publication may change
// who serves, never what is served.

import (
	"fmt"
	"sync"
	"testing"

	"supercayley/internal/core"
	"supercayley/internal/gens"
	"supercayley/internal/perm"
)

// referenceRoutes computes the canonical route for every quotient rank
// from a dense table (the single-threaded ground truth).
func referenceRoutes(t *testing.T, nw *core.Network) [][]gens.GenIndex {
	t.Helper()
	dense, err := Build(nw, Config{Mode: ModeDense})
	if err != nil {
		t.Fatal(err)
	}
	n := nw.N()
	k := nw.K()
	w := make(perm.Perm, k)
	refs := make([][]gens.GenIndex, n)
	for r := int64(0); r < n; r++ {
		perm.UnrankInto(w, r)
		route, ok := dense.AppendQuotientRoute(nil, w)
		if !ok {
			t.Fatalf("dense table declined rank %d", r)
		}
		refs[r] = route
	}
	return refs
}

// raceTable hammers tab from goroutines goroutines, each walking every
// quotient rank at its own stride, and checks each served route
// against refs.  It returns how many calls the table served.
func raceTable(t *testing.T, nw *core.Network, tab *Table, refs [][]gens.GenIndex, goroutines int) uint64 {
	t.Helper()
	n := nw.N()
	k := nw.K()
	var served sync.Map // goroutine id → served count
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := make(perm.Perm, k)
			buf := make([]gens.GenIndex, 0, 64)
			var hits uint64
			// Each goroutine starts at a different offset so distinct
			// unbuilt bands are faulted concurrently.
			for i := int64(0); i < n; i++ {
				r := (i*int64(goroutines) + int64(g)) % n
				perm.UnrankInto(w, r)
				route, ok := tab.AppendQuotientRoute(buf[:0], w)
				if !ok {
					continue
				}
				hits++
				if err := sameRoute(route, refs[r]); err != nil {
					t.Errorf("goroutine %d rank %d: %v", g, r, err)
					return
				}
			}
			served.Store(g, hits)
		}(g)
	}
	wg.Wait()
	var total uint64
	served.Range(func(_, v any) bool { total += v.(uint64); return true })
	return total
}

func sameRoute(got, want []gens.GenIndex) error {
	if len(got) != len(want) {
		return fmt.Errorf("route length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("step %d is %d, want %d", i, got[i], want[i])
		}
	}
	return nil
}

// TestRaceFaultBuildOutputIdentical: FaultBuild readers racing each
// other's band publication.  Every call must be served (the builder
// policy never declines without a budget) and match the reference.
func TestRaceFaultBuildOutputIdentical(t *testing.T) {
	nw := core.MustNew(core.MS, 5, 1) // k = 6, 720 ranks
	refs := referenceRoutes(t, nw)
	tab, err := Build(nw, Config{Mode: ModeBanded, BandBits: 4, Policy: FaultBuild})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	total := raceTable(t, nw, tab, refs, goroutines)
	if want := uint64(goroutines) * uint64(nw.N()); total != want {
		t.Errorf("FaultBuild served %d of %d calls", total, want)
	}
	if st := tab.Stats(); st.Bytes != nw.N() {
		t.Errorf("fully faulted table resident %d bytes, want %d", st.Bytes, nw.N())
	}
}

// TestRaceFaultDeclineVsPrebuild: FaultDecline readers racing a
// Prebuild warmer publishing the same bands.  Declines are legal while
// bands are absent; anything served must match the reference, and once
// the warmer finishes a final single-threaded lap must serve
// everything.
func TestRaceFaultDeclineVsPrebuild(t *testing.T) {
	nw := core.MustNew(core.MS, 5, 1)
	refs := referenceRoutes(t, nw)
	tab, err := Build(nw, Config{Mode: ModeBanded, BandBits: 4, Policy: FaultDecline})
	if err != nil {
		t.Fatal(err)
	}
	nb := (nw.N() + (1 << 4) - 1) >> 4
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := tab.Prebuild(0, nb); err != nil {
			t.Errorf("prebuild: %v", err)
		}
	}()
	raceTable(t, nw, tab, refs, 8)
	wg.Wait()
	if total := raceTable(t, nw, tab, refs, 1); total != uint64(nw.N()) {
		t.Errorf("warmed FaultDecline table served %d of %d ranks", total, nw.N())
	}
}

// TestRaceBudgetedFaultBuildOutputIdentical: a residency budget far
// below the table forces racing walk-start refusals and mid-walk
// GreedyDim substitution; serving may be partial but never wrong, and
// residency stays within budget plus the documented racing-faulter
// overshoot.
func TestRaceBudgetedFaultBuildOutputIdentical(t *testing.T) {
	nw := core.MustNew(core.MS, 5, 1)
	refs := referenceRoutes(t, nw)
	const budget = 128
	const goroutines = 8
	tab, err := Build(nw, Config{
		Mode: ModeBanded, BandBits: 4, Policy: FaultBuild, MaxResidentBytes: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	raceTable(t, nw, tab, refs, goroutines)
	overshoot := int64(goroutines-1) * (1 << 4)
	if st := tab.Stats(); st.Bytes > budget+overshoot {
		t.Errorf("resident %d bytes over budget %d + overshoot bound %d", st.Bytes, budget, overshoot)
	}
}
