package tables

// Versioned binary snapshot of a routing table, so cold starts can
// load precomputed state instead of rebuilding it.
//
// Layout (little-endian):
//
//	[0, 4)    magic "SCGT"
//	[4, 8)    format version (currently 1)
//	header    k, mode, policy, bandBits, n, payload offset/length,
//	          payload CRC32, network name, dimension expansions,
//	          header CRC32 (IEEE, over every header byte before it)
//	padding   zero bytes up to the payload offset — the payload starts
//	          on a snapshotAlign boundary so a loader may mmap the file
//	          and use the dims region in place
//	payload   dense: the n dims bytes verbatim.
//	          banded: a built-band presence bitmap, then the built
//	          bands concatenated in band order.
//
// The expansions ride in the header, so Load is self-contained — no
// Network needed; core.CachedRouter.UseTable re-validates name and k
// before the table can serve routes.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync/atomic"

	"supercayley/internal/gens"
	"supercayley/internal/perm"
)

const (
	snapshotMagic   = "SCGT"
	snapshotVersion = 1
	// snapshotAlign is the payload alignment: one common page.
	snapshotAlign = 4096
)

// Save writes the snapshot of t to w.  For banded tables it captures
// the bands built at the time of the call; concurrent faults may add
// bands that the snapshot will not contain.
func (t *Table) Save(w io.Writer) error {
	var payload []byte
	if t.mode == ModeDense {
		payload = t.dims
	} else {
		nb := t.numBands()
		bitmap := make([]byte, (nb+7)/8)
		var body bytes.Buffer
		for b := int64(0); b < nb; b++ {
			p := t.bands[b].Load()
			if p == nil {
				continue
			}
			bitmap[b>>3] |= 1 << uint(b&7)
			body.Write(*p)
		}
		payload = append(bitmap, body.Bytes()...)
	}

	var hdr bytes.Buffer
	hdr.WriteString(snapshotMagic)
	le := binary.LittleEndian
	put32 := func(v uint32) { _ = binary.Write(&hdr, le, v) }
	put64 := func(v uint64) { _ = binary.Write(&hdr, le, v) }
	put32(snapshotVersion)
	put32(uint32(t.k))
	put32(uint32(t.mode))
	put32(uint32(t.policy))
	put32(uint32(t.bandBits))
	put64(uint64(t.n))
	put64(uint64(len(payload)))
	put32(crc32.ChecksumIEEE(payload))
	name := []byte(t.name)
	put32(uint32(len(name)))
	hdr.Write(name)
	put32(uint32(len(t.exp) - 2)) // expansions for d = 2..k
	for d := 2; d <= t.k; d++ {
		e := t.exp[d]
		put32(uint32(len(e)))
		for _, g := range e {
			hdr.WriteByte(byte(g))
		}
	}
	// The payload offset is determined by the header + CRC + alignment;
	// write it as a trailing fixed field so the reader can seek.
	off := (hdr.Len() + 8 + 4 + snapshotAlign - 1) / snapshotAlign * snapshotAlign
	put64(uint64(off))
	put32(crc32.ChecksumIEEE(hdr.Bytes()))
	pad := make([]byte, off-hdr.Len())

	bw := bufio.NewWriterSize(w, 1<<20)
	for _, chunk := range [][]byte{hdr.Bytes(), pad, payload} {
		if _, err := bw.Write(chunk); err != nil {
			return fmt.Errorf("tables: snapshot write: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("tables: snapshot write: %w", err)
	}
	mSnapshotSaves.Inc()
	return nil
}

// WriteFile saves the snapshot atomically: temp file + rename.
func (t *Table) WriteFile(path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := t.Save(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// Load reads a snapshot written by Save and reconstructs the table.
// Corrupted headers or payloads (bad magic, unknown version, CRC
// mismatch, inconsistent geometry) are rejected with an error.
func Load(r io.Reader) (*Table, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	fixed := make([]byte, 4+4+4+4+4+4+8+8+4+4)
	if _, err := io.ReadFull(br, fixed); err != nil {
		return nil, fmt.Errorf("tables: snapshot header: %w", err)
	}
	if string(fixed[:4]) != snapshotMagic {
		return nil, fmt.Errorf("tables: bad snapshot magic %q", fixed[:4])
	}
	le := binary.LittleEndian
	if v := le.Uint32(fixed[4:]); v != snapshotVersion {
		return nil, fmt.Errorf("tables: snapshot version %d, want %d", v, snapshotVersion)
	}
	k := int(le.Uint32(fixed[8:]))
	mode := Mode(le.Uint32(fixed[12:]))
	policy := FaultPolicy(le.Uint32(fixed[16:]))
	bandBits := uint(le.Uint32(fixed[20:]))
	n := int64(le.Uint64(fixed[24:]))
	payloadLen := int64(le.Uint64(fixed[32:]))
	payloadCRC := le.Uint32(fixed[40:])
	nameLen := int(le.Uint32(fixed[44:]))
	if k < 2 || k > BandedMaxK || n != perm.Factorial(k) {
		return nil, fmt.Errorf("tables: snapshot geometry k=%d n=%d inconsistent", k, n)
	}
	if mode != ModeDense && mode != ModeBanded {
		return nil, fmt.Errorf("tables: snapshot mode %d unknown", mode)
	}
	if bandBits == 0 || bandBits > 30 {
		return nil, fmt.Errorf("tables: snapshot band bits %d out of range", bandBits)
	}
	if nameLen < 1 || nameLen > 255 {
		return nil, fmt.Errorf("tables: snapshot name length %d out of range", nameLen)
	}
	rest := make([]byte, nameLen+4)
	if _, err := io.ReadFull(br, rest); err != nil {
		return nil, fmt.Errorf("tables: snapshot header: %w", err)
	}
	name := string(rest[:nameLen])
	expCount := int(le.Uint32(rest[nameLen:]))
	if expCount != k-1 {
		return nil, fmt.Errorf("tables: snapshot has %d expansions, want %d", expCount, k-1)
	}
	hdr := append(append([]byte(nil), fixed...), rest...)
	exp := make([][]gens.GenIndex, k+1)
	var lenBuf [4]byte
	for d := 2; d <= k; d++ {
		if _, err := io.ReadFull(br, lenBuf[:]); err != nil {
			return nil, fmt.Errorf("tables: snapshot expansions: %w", err)
		}
		hdr = append(hdr, lenBuf[:]...)
		el := int(le.Uint32(lenBuf[:]))
		if el > 1<<16 {
			return nil, fmt.Errorf("tables: snapshot expansion %d length %d implausible", d, el)
		}
		raw := make([]byte, el)
		if _, err := io.ReadFull(br, raw); err != nil {
			return nil, fmt.Errorf("tables: snapshot expansions: %w", err)
		}
		hdr = append(hdr, raw...)
		e := make([]gens.GenIndex, el)
		for i, b := range raw {
			e[i] = gens.GenIndex(b)
		}
		exp[d] = e
	}
	tail := make([]byte, 8+4)
	if _, err := io.ReadFull(br, tail); err != nil {
		return nil, fmt.Errorf("tables: snapshot header: %w", err)
	}
	off := int64(le.Uint64(tail[:8]))
	wantCRC := le.Uint32(tail[8:])
	hdr = append(hdr, tail[:8]...)
	if got := crc32.ChecksumIEEE(hdr); got != wantCRC {
		return nil, fmt.Errorf("tables: snapshot header checksum %08x, want %08x (corrupted header)", got, wantCRC)
	}
	if off < int64(len(hdr)+4) || off%snapshotAlign != 0 {
		return nil, fmt.Errorf("tables: snapshot payload offset %d misaligned", off)
	}
	if _, err := io.CopyN(io.Discard, br, off-int64(len(hdr))-4); err != nil {
		return nil, fmt.Errorf("tables: snapshot padding: %w", err)
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(br, payload); err != nil {
		return nil, fmt.Errorf("tables: snapshot payload: %w", err)
	}
	if got := crc32.ChecksumIEEE(payload); got != payloadCRC {
		return nil, fmt.Errorf("tables: snapshot payload checksum %08x, want %08x (corrupted payload)", got, payloadCRC)
	}

	t := &Table{
		name:     name,
		k:        k,
		n:        n,
		exp:      exp,
		mode:     mode,
		policy:   policy,
		bandBits: bandBits,
		bandMask: int64(1)<<bandBits - 1,
	}
	if mode == ModeDense {
		if payloadLen != n {
			return nil, fmt.Errorf("tables: dense payload %d bytes, want %d", payloadLen, n)
		}
		t.dims = payload
		if k <= FastLaneMaxK {
			// The fast lane is derived state (a straight walk of the
			// rank space), so it never rides in the snapshot — the
			// payload stays 1 byte per rank and Load re-derives it.
			t.perms = make([]uint8, n*int64(k))
			t.next = make([]uint32, n)
			buildRange(nil, t.perms, t.next, k, 0, n, 0)
		}
		t.bandsBuilt.Store(1)
		t.resident.Store(n + int64(len(t.perms)) + 4*int64(len(t.next)))
	} else {
		nb := t.numBands()
		bmLen := (nb + 7) / 8
		if payloadLen < bmLen {
			return nil, fmt.Errorf("tables: banded payload %d bytes shorter than bitmap %d", payloadLen, bmLen)
		}
		bitmap := payload[:bmLen]
		body := payload[bmLen:]
		t.bands = make([]atomic.Pointer[[]uint8], nb)
		var built, bytesIn int64
		for b := int64(0); b < nb; b++ {
			if bitmap[b>>3]&(1<<uint(b&7)) == 0 {
				continue
			}
			lo := b << bandBits
			hi := lo + t.bandMask + 1
			if hi > n {
				hi = n
			}
			size := hi - lo
			if int64(len(body)) < size {
				return nil, fmt.Errorf("tables: banded payload truncated at band %d", b)
			}
			band := body[:size:size]
			body = body[size:]
			dims := []uint8(band)
			t.bands[b].Store(&dims)
			built++
			bytesIn += size
		}
		if len(body) != 0 {
			return nil, fmt.Errorf("tables: banded payload has %d trailing bytes", len(body))
		}
		t.bandsBuilt.Store(built)
		t.resident.Store(bytesIn)
	}
	registerTable(t)
	mSnapshotLoads.Inc()
	return t, nil
}

// ReadFile loads a snapshot from path.
func ReadFile(path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
