package tables

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"supercayley/internal/core"
	"supercayley/internal/perm"
)

func routesEqual(t *testing.T, a, b *Table, k int) {
	t.Helper()
	wa := make(perm.Perm, k)
	wb := make(perm.Perm, k)
	perm.All(k, func(q perm.Perm) bool {
		copy(wa, q)
		copy(wb, q)
		ra, oka := a.AppendQuotientRoute(nil, wa)
		rb, okb := b.AppendQuotientRoute(nil, wb)
		if oka != okb {
			t.Fatalf("quotient %v: coverage differs (%v vs %v)", q, oka, okb)
		}
		if len(ra) != len(rb) {
			t.Fatalf("quotient %v: routes differ (%v vs %v)", q, ra, rb)
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("quotient %v: routes differ at %d (%v vs %v)", q, i, ra, rb)
			}
		}
		return true
	})
}

// TestSnapshotRoundTripDense saves a dense table and reloads it; the
// loaded table must route identically and carry the same metadata.
func TestSnapshotRoundTripDense(t *testing.T) {
	nw := core.MustNew(core.MS, 2, 2)
	tab, err := Build(nw, Config{Mode: ModeDense})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	path := filepath.Join(t.TempDir(), "ms22.scgt")
	if err := tab.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got.Name() != tab.Name() || got.K() != tab.K() || got.N() != tab.N() || got.Mode() != tab.Mode() {
		t.Fatalf("loaded metadata %+v, want %+v", got.Stats(), tab.Stats())
	}
	if !bytes.Equal(got.dims, tab.dims) {
		t.Fatalf("loaded dims differ from saved dims")
	}
	routesEqual(t, tab, got, nw.K())
	// A loaded table must pass router validation, i.e. survive restarts
	// as a drop-in.
	cr := core.NewCachedRouter(nw, core.CacheConfig{})
	if err := cr.UseTable(got); err != nil {
		t.Fatalf("UseTable on loaded table: %v", err)
	}
}

// TestSnapshotRoundTripBanded saves a partially built banded table;
// the loaded table must have the same bands resident and the same
// coverage behavior.
func TestSnapshotRoundTripBanded(t *testing.T) {
	nw := core.MustNew(core.IS, 1, 4) // IS(5)
	tab, err := Build(nw, Config{Mode: ModeBanded, BandBits: 4, Policy: FaultDecline})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := tab.Prebuild(1, 4); err != nil {
		t.Fatalf("Prebuild: %v", err)
	}
	var buf bytes.Buffer
	if err := tab.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Stats().BandsBuilt != tab.Stats().BandsBuilt || got.Bytes() != tab.Bytes() {
		t.Fatalf("loaded census %+v, want %+v", got.Stats(), tab.Stats())
	}
	if got.Policy() != FaultDecline {
		t.Fatalf("loaded policy %v, want decline", got.Policy())
	}
	routesEqual(t, tab, got, nw.K())
}

// TestSnapshotCorruptionRejected flips bytes across the file and
// checks every corruption is caught (header CRC, payload CRC, magic,
// version), and that truncations fail cleanly.
func TestSnapshotCorruptionRejected(t *testing.T) {
	nw := core.MustNew(core.MR, 2, 2)
	tab, err := Build(nw, Config{Mode: ModeDense})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	var buf bytes.Buffer
	if err := tab.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	good := buf.Bytes()
	if _, err := Load(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
	// Corrupt one byte at a spread of offsets: inside the magic, the
	// fixed header, the name/expansions, and the payload.
	offsets := []int{0, 5, 9, 30, 50, len(good) - 1}
	for _, off := range offsets {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x41
		if _, err := Load(bytes.NewReader(bad)); err == nil {
			t.Fatalf("corruption at offset %d accepted", off)
		}
	}
	for _, cut := range []int{3, 20, 60, snapshotAlign, len(good) - 10} {
		if cut >= len(good) {
			continue
		}
		if _, err := Load(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// TestWriteFileAtomic checks the temp-and-rename contract: a failed
// save leaves no partial file behind.
func TestWriteFileAtomic(t *testing.T) {
	nw := core.MustNew(core.RS, 2, 2)
	tab, err := Build(nw, Config{Mode: ModeDense})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "nope.scgt")
	if err := tab.WriteFile(path); err == nil {
		t.Fatalf("WriteFile into a missing directory succeeded")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(entries) != 0 {
		t.Fatalf("failed WriteFile left debris: %v", entries)
	}
}
