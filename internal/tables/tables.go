// Package tables implements precomputed next-dimension routing tables
// over the quotient space of a super Cayley network — the
// spanning-factorization end state of ROADMAP item 2 (Dougherty–Faber:
// a spanning factorization of a Cayley graph yields global one-hop
// routing tables).
//
// Routing is left-translation-invariant, so every pair (u, v) reduces
// to sorting the quotient w = v⁻¹∘u to the identity.  The table stores
// ONE BYTE per quotient rank: the star dimension the greedy cycle
// algorithm moves along next (core.GreedyDim), not the first generator
// index of the expanded route.  Two different dimensions can expand to
// sequences that share a first generator (in MS(2,2), T₄ and T₅ both
// open with S₂), so a first-port table could not be replayed
// unambiguously — the dimension can, and replaying
// dimExp[dims[rank(w)]] per hop reproduces the kernel's route port for
// port by construction.  Each hop is then: one byte load, one
// expansion append, one transposition of w, and an incremental Lehmer
// rerank (perm.RankSwapUpdate — no division, no O(k²) recompute).
//
// Dense tables at k ≤ FastLaneMaxK additionally carry two derived
// fast-lane arrays that never ride in the snapshot: the successor-rank
// array (each entry's incremental rerank, precomputed via
// perm.RankAfterSwap, so the hot walk is a pure dims/next chase that
// ranks w once and never mutates it) and the rank→permutation slab (so
// rank-addressed routes — core.RankTable — resolve both endpoints with
// slab reads instead of two division-heavy UnrankInto calls).
//
// Two residency modes share the format:
//
//   - dense (k ≤ DenseMaxK): one flat []uint8 of length k!, built in
//     parallel by a worker pool walking rank bands (perm.UnrankInto at
//     the band start, perm.Next per step).  k = 10 is 3 628 800 bytes.
//   - banded (k ≤ BandedMaxK): the rank space is cut into 2^BandBits
//     -entry bands materialized on demand.  A missing band at the walk
//     start either faults the band in (FaultBuild) or declines the
//     lookup (FaultDecline) so core.CachedRouter falls through to the
//     LRU; a band missing mid-walk never declines — the walk swaps in
//     core.GreedyDim for that hop, which is output-identical.
//
// Tables serialize to a versioned, checksummed, mmap-friendly snapshot
// (snapshot.go) that embeds the dimension expansions, so loading needs
// no Network; core.CachedRouter.UseTable re-validates name and k.
package tables

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"supercayley/internal/core"
	"supercayley/internal/gens"
	"supercayley/internal/obs"
	"supercayley/internal/perm"
)

const (
	// DenseMaxK caps dense tables: 10! bytes ≈ 3.6 MB resident.
	DenseMaxK = 10
	// FastLaneMaxK caps the dense fast-lane arrays: the rank→permutation
	// slab (k bytes per rank, so rank-addressed routes skip UnrankInto)
	// and the successor-rank array (4 bytes per rank — the incremental
	// rerank of RankAfterSwap, precomputed, so the walk is a pure table
	// chase).  Together they cost (k+4)× the dims array; at k = 9 that
	// is ~4.7 MB on top of 363 KB of dims, at k = 10 it would be 50 MB —
	// past the cap a dense table stays 1 byte per rank and routes
	// through the digits walk.
	FastLaneMaxK = 9
	// BandedMaxK caps banded tables: ranks stay exact (≤ 12! fits the
	// cache's RankKeyMaxK regime) and a full table would be 479 MB —
	// banding keeps residency proportional to traffic.
	BandedMaxK = 12
	// DefaultBandBits sizes on-demand bands at 64 Ki entries (64 KiB).
	DefaultBandBits = 16
)

// Mode selects table residency.
type Mode uint8

const (
	// ModeAuto picks dense for k ≤ DenseMaxK, else banded.
	ModeAuto Mode = iota
	// ModeDense materializes the full k! table at build time.
	ModeDense
	// ModeBanded materializes 2^BandBits-entry bands on first touch.
	ModeBanded
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeAuto:
		return "auto"
	case ModeDense:
		return "dense"
	case ModeBanded:
		return "banded"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// FaultPolicy says what a banded table does when the walk STARTS in an
// unbuilt band.
type FaultPolicy uint8

const (
	// FaultBuild materializes the missing band synchronously and
	// publishes it for every later route (the default).
	FaultBuild FaultPolicy = iota
	// FaultDecline refuses the lookup so the router falls through to
	// the LRU/kernel; bands only appear via Prebuild or snapshot Load.
	FaultDecline
)

// String names the policy.
func (p FaultPolicy) String() string {
	if p == FaultDecline {
		return "decline"
	}
	return "build"
}

// Config parameterizes Build.  The zero value is ModeAuto,
// DefaultBandBits, FaultBuild, GOMAXPROCS build workers, no residency
// budget.
type Config struct {
	Mode     Mode
	BandBits uint // log2 band entries for banded mode; 0 → DefaultBandBits
	Policy   FaultPolicy
	Workers  int // parallel build workers; 0 → GOMAXPROCS
	// MaxResidentBytes bounds the banded table's materialized dims
	// bytes (0 = unlimited; dense mode ignores it).  A band fault that
	// would cross the budget is refused instead of built: at the walk
	// start the lookup declines so the router falls through to its
	// LRU/kernel, mid-walk the hop substitutes core.GreedyDim —
	// output-identical either way, so the budget trades speed for
	// memory, never correctness.  Racing faulters may overshoot by at
	// most (concurrent faulters − 1) bands.
	MaxResidentBytes int64
}

// Table is a precomputed next-dimension routing table for one network.
// It implements core.QuotientTable.  All methods are safe for
// concurrent use once Build/Load returns.
type Table struct {
	name string
	k    int
	n    int64

	// exp[d] is the network's dimension-d expansion (d = 2..k), cloned
	// from core.Network.DimExpansion so the table is self-contained.
	exp [][]gens.GenIndex

	mode   Mode // ModeDense or ModeBanded (never ModeAuto)
	policy FaultPolicy

	// Dense residency: the whole table, dims[rank] ∈ {0, 2..k}.
	dims []uint8

	// Dense fast-lane arrays, built when k ≤ FastLaneMaxK and immutable
	// afterwards.  perms is the rank→permutation slab (k bytes per
	// rank): AppendRouteRanks resolves both endpoints with two slab
	// reads instead of two division-heavy UnrankInto calls.  next is
	// the successor-rank array: next[r] is the rank after the greedy
	// star move at r (RankAfterSwap, precomputed at build), so the hot
	// walk never reranks — it chases dims/next until dims[r] == 0.
	perms []uint8
	next  []uint32

	// Banded residency: bands[b] covers ranks [b<<bandBits,
	// (b+1)<<bandBits) ∩ [0, n); published once via CompareAndSwap and
	// immutable afterwards.
	bandBits uint
	bandMask int64
	bands    []atomic.Pointer[[]uint8]
	budget   int64 // max resident dims bytes (0 = unlimited)

	buildNS       int64 // initial Build wall time, ns
	bandsBuilt    atomic.Int64
	bandFaults    atomic.Int64
	budgetRefused atomic.Int64 // band faults refused by the residency budget
	resident      atomic.Int64 // built dims bytes
}

// Stats is a point-in-time table census.
type Stats struct {
	Name          string
	K             int
	Mode          string
	Policy        string
	BandsBuilt    int64 // bands materialized (dense: total bands = 1 slab)
	BandFaults    int64 // on-demand materializations triggered by routing
	BudgetRefused int64 // band faults refused by the residency budget
	Bytes         int64 // resident dims bytes
	BudgetBytes   int64 // residency budget (0 = unlimited)
	BuildNS       int64 // initial Build wall time
}

// Build constructs the table for nw by walking the quotient rank space
// with cfg.Workers parallel band walkers.  Dense mode fills the whole
// table; banded mode builds nothing up front (bands appear on demand
// or via Prebuild).
func Build(nw *core.Network, cfg Config) (*Table, error) {
	k := nw.K()
	mode := cfg.Mode
	if mode == ModeAuto {
		if k <= DenseMaxK {
			mode = ModeDense
		} else {
			mode = ModeBanded
		}
	}
	switch mode {
	case ModeDense:
		if k > DenseMaxK {
			return nil, fmt.Errorf("tables: dense mode caps at k=%d (%s has k=%d); use banded", DenseMaxK, nw.Name(), k)
		}
	case ModeBanded:
		if k > BandedMaxK {
			return nil, fmt.Errorf("tables: banded mode caps at k=%d (%s has k=%d)", BandedMaxK, nw.Name(), k)
		}
	default:
		return nil, fmt.Errorf("tables: unknown mode %v", cfg.Mode)
	}
	bandBits := cfg.BandBits
	if bandBits == 0 {
		bandBits = DefaultBandBits
	}
	if bandBits > 30 {
		return nil, fmt.Errorf("tables: band bits %d too large", bandBits)
	}
	t := &Table{
		name:     nw.Name(),
		k:        k,
		n:        nw.N(),
		mode:     mode,
		policy:   cfg.Policy,
		bandBits: bandBits,
		bandMask: int64(1)<<bandBits - 1,
		budget:   cfg.MaxResidentBytes,
	}
	t.exp = make([][]gens.GenIndex, k+1)
	for d := 2; d <= k; d++ {
		t.exp[d] = append([]gens.GenIndex(nil), nw.DimExpansion(d)...)
	}
	t0 := time.Now()
	if mode == ModeDense {
		t.dims = make([]uint8, t.n)
		if k <= FastLaneMaxK {
			t.perms = make([]uint8, t.n*int64(k))
			t.next = make([]uint32, t.n)
		}
		buildRange(t.dims, t.perms, t.next, k, 0, t.n, cfg.Workers)
		t.bandsBuilt.Store(1)
		t.resident.Store(t.n + int64(len(t.perms)) + 4*int64(len(t.next)))
	} else {
		t.bands = make([]atomic.Pointer[[]uint8], t.numBands())
	}
	t.buildNS = time.Since(t0).Nanoseconds()
	hBuildNs.Observe(0, uint64(t.buildNS))
	registerTable(t)
	return t, nil
}

// buildRange fills dims (indexed from lo) with the greedy next
// dimension of every quotient rank in [lo, hi), fanned out over
// workers walking disjoint sub-bands: one unrank at the sub-band
// start, then lexicographic successors — amortized O(1) per rank.
// Dense builds at k ≤ FastLaneMaxK also fill the fast-lane arrays in
// the same walk: perms records each rank's permutation bytes (k per
// rank) and next the rank after the greedy star move (RankAfterSwap —
// the walker knows r, so the incremental rerank is exact and cheap).
// Any output may be nil: band builds pass only dims, snapshot Load
// re-derives only the fast lane.
func buildRange(dims, perms []uint8, next []uint32, k int, lo, hi int64, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	total := hi - lo
	if total <= 0 {
		return
	}
	// ≥ 4 sub-bands per worker so a straggler band cannot serialize the
	// build; floor keeps tiny tables on one walker.
	chunk := total / int64(workers*4)
	if chunk < 1024 {
		chunk = 1024
	}
	var cursor atomic.Int64
	cursor.Store(lo)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(dims, perms []uint8, next []uint32, lo, hi, chunk int64) {
			defer wg.Done()
			p := make(perm.Perm, k)
			for {
				start := cursor.Add(chunk) - chunk
				if start >= hi {
					return
				}
				end := start + chunk
				if end > hi {
					end = hi
				}
				perm.UnrankInto(p, start)
				for r := start; r < end; r++ {
					d := uint8(core.GreedyDim(p))
					if dims != nil {
						dims[r-lo] = d
					}
					if perms != nil {
						copy(perms[(r-lo)*int64(k):], p)
					}
					if next != nil {
						if d == 0 {
							next[r-lo] = uint32(r) // identity: self-loop, never chased
						} else {
							next[r-lo] = uint32(perm.RankAfterSwap(p, r, 0, int(d)-1))
						}
					}
					perm.Next(p)
				}
			}
		}(dims, perms, next, lo, hi, chunk)
	}
	wg.Wait()
	if dims != nil {
		mRanksBuilt.Add(uint64(total))
	}
}

// Name returns the network name the table was built for.
func (t *Table) Name() string { return t.name }

// K returns the symbol count.
func (t *Table) K() int { return t.k }

// N returns the number of quotient ranks, k!.
func (t *Table) N() int64 { return t.n }

// Mode returns the residency mode (dense or banded).
func (t *Table) Mode() Mode { return t.mode }

// Policy returns the banded fault policy.
func (t *Table) Policy() FaultPolicy { return t.policy }

// BuildTime returns the initial Build wall time.
func (t *Table) BuildTime() time.Duration { return time.Duration(t.buildNS) }

// SetBudget installs (or clears, with 0) the residency budget.
// Snapshots do not carry the budget — it is deployment configuration,
// not table state — so loaders re-apply it here.  SetBudget is a setup
// call: it must not race with routing.  A loaded table already over
// the new budget keeps its bands; only further faults are refused.
func (t *Table) SetBudget(b int64) { t.budget = b }

// Bytes returns the resident table payload in bytes: built dims bands
// plus the rank→permutation slab when present (expansions and headers
// are noise by comparison).
func (t *Table) Bytes() int64 { return t.resident.Load() }

// Stats returns the current census.
func (t *Table) Stats() Stats {
	return Stats{
		Name:          t.name,
		K:             t.k,
		Mode:          t.mode.String(),
		Policy:        t.policy.String(),
		BandsBuilt:    t.bandsBuilt.Load(),
		BandFaults:    t.bandFaults.Load(),
		BudgetRefused: t.budgetRefused.Load(),
		Bytes:         t.Bytes(),
		BudgetBytes:   t.budget,
		BuildNS:       t.buildNS,
	}
}

func (t *Table) numBands() int64 {
	return (t.n + t.bandMask) >> t.bandBits
}

// Prebuild materializes bands [loBand, hiBand) of a banded table (no-op
// on dense tables), for warming a FaultDecline table deliberately.  It
// stops early — without error — at the first band the residency budget
// refuses: warming fills the budget and leaves the rest on demand.
func (t *Table) Prebuild(loBand, hiBand int64) error {
	if t.mode == ModeDense {
		return nil
	}
	if nb := t.numBands(); loBand < 0 || hiBand > nb || loBand > hiBand {
		return fmt.Errorf("tables: Prebuild band range [%d, %d) out of [0, %d)", loBand, hiBand, nb)
	}
	for b := loBand; b < hiBand; b++ {
		if t.band(b) == nil {
			return nil
		}
	}
	return nil
}

// band returns band b, materializing and publishing it if absent, or
// nil when the residency budget refuses the build.  The budget check
// reads resident before the CAS publish, so racing faulters can
// overshoot by at most (concurrent faulters − 1) bands — bounded, and
// only under contention for distinct unbuilt bands.
func (t *Table) band(b int64) *[]uint8 {
	if p := t.bands[b].Load(); p != nil {
		return p
	}
	lo := b << t.bandBits
	hi := lo + t.bandMask + 1
	if hi > t.n {
		hi = t.n
	}
	if t.budget > 0 && t.resident.Load()+(hi-lo) > t.budget {
		t.budgetRefused.Add(1)
		mBudgetRefused.Inc()
		return nil
	}
	t0 := obs.NowNs()
	dims := make([]uint8, hi-lo)
	buildRange(dims, nil, nil, t.k, lo, hi, 1)
	// Fault-ins are rare and expensive (a synchronous band build on the
	// route path), so every one is timed — no sampling gate.
	stFaultIn.Observe(int(b), uint64(obs.NowNs()-t0))
	p := &dims
	if !t.bands[b].CompareAndSwap(nil, p) {
		return t.bands[b].Load() // concurrent faulter won the publish
	}
	t.bandsBuilt.Add(1)
	t.resident.Add(int64(len(dims)))
	mBandsBuilt.Inc()
	return p
}

// AppendRouteRanks implements core.RankTable: it serves the route for
// an endpoint-rank pair entirely from precomputed state.  Both
// endpoints come from the rank→permutation slab (two reads — no
// UnrankInto divisions), the quotient v⁻¹∘u is composed into stack
// arrays, and the walk is appendDense.  Declines (dst unchanged) when
// the table carries no slab: banded mode, or dense with k >
// FastLaneMaxK, where the router's standard unrank path takes over.
// Ranks must be in [0, N); the slab slices are read-only and never
// escape.
//
//scg:noalloc
func (t *Table) AppendRouteRanks(dst []gens.GenIndex, src, dstRank int64) ([]gens.GenIndex, bool) {
	if t.perms == nil {
		return dst, false
	}
	k := int64(t.k)
	u := perm.Perm(t.perms[src*k : src*k+k])
	v := perm.Perm(t.perms[dstRank*k : dstRank*k+k])
	var invArr, wArr [perm.MaxK]uint8
	inv := perm.Perm(invArr[:k])
	w := perm.Perm(wArr[:k])
	v.InverseInto(inv)
	inv.ComposeInto(w, u)
	return t.appendDense(dst, w), true
}

// AppendQuotientRoute implements core.QuotientTable: it appends the
// canonical route sorting quotient w to the identity and reports
// whether the table served it.  A FaultDecline banded table declines
// (dst and w untouched) when the starting band is absent; every other
// case succeeds, using w as scratch (the digits walk consumes it, the
// fast-lane chase only ranks it).
func (t *Table) AppendQuotientRoute(dst []gens.GenIndex, w perm.Perm) ([]gens.GenIndex, bool) {
	if t.mode == ModeDense {
		return t.appendDense(dst, w), true
	}
	return t.appendBanded(dst, w)
}

// appendDense is the table-mode hot loop.  With the fast lane built
// (k ≤ FastLaneMaxK) each hop is two flat-array loads and one
// expansion append — the rerank is already in the successor array, so
// w is only ranked once and never mutated.  Past the cap the walk
// falls back to transposition plus the division-free incremental
// rerank of RankSwapUpdate.  The digit vector lives on the stack; the
// only allocation anywhere is dst growth.
//
//scg:noalloc
func (t *Table) appendDense(dst []gens.GenIndex, w perm.Perm) []gens.GenIndex {
	var digArr [perm.MaxK]int32
	dig := digArr[:len(w)]
	rank := perm.LehmerDigitsInto(dig, w)
	mark := len(dst)
	if t.next != nil {
		for {
			d := t.dims[rank]
			if d == 0 {
				mTableRoutes.Inc()
				mTableSteps.Add(uint64(len(dst) - mark))
				return dst
			}
			dst = append(dst, t.exp[d]...)
			rank = int64(t.next[rank])
		}
	}
	for {
		d := t.dims[rank]
		if d == 0 {
			mTableRoutes.Inc()
			mTableSteps.Add(uint64(len(dst) - mark))
			return dst
		}
		dst = append(dst, t.exp[d]...)
		j := int(d) - 1
		rank += perm.RankSwapUpdate(w, dig, 0, j)
		w[0], w[j] = w[j], w[0]
	}
}

// appendBanded is the dense walk against on-demand bands.  A walk that
// STARTS in an absent band declines under FaultDecline, and under
// FaultBuild when the residency budget refuses the fault — either way
// the router falls through to its LRU/kernel.  Absent bands mid-walk
// never decline: FaultBuild materializes them (budget permitting),
// otherwise the hop substitutes core.GreedyDim — the same value the
// band would hold, so the route bytes are identical either way.
func (t *Table) appendBanded(dst []gens.GenIndex, w perm.Perm) ([]gens.GenIndex, bool) {
	var digArr [perm.MaxK]int32
	dig := digArr[:len(w)]
	rank := perm.LehmerDigitsInto(dig, w)
	if t.bands[rank>>t.bandBits].Load() == nil {
		if t.policy == FaultDecline {
			mDeclines.Inc()
			return dst, false
		}
		t.bandFaults.Add(1)
		mBandFaults.Inc()
		if t.band(rank>>t.bandBits) == nil {
			mDeclines.Inc()
			return dst, false
		}
	}
	mark := len(dst)
	for {
		var d uint8
		if p := t.bands[rank>>t.bandBits].Load(); p != nil {
			d = (*p)[rank&t.bandMask]
		} else if t.policy == FaultBuild {
			t.bandFaults.Add(1)
			mBandFaults.Inc()
			if p := t.band(rank >> t.bandBits); p != nil {
				d = (*p)[rank&t.bandMask]
			} else {
				d = uint8(core.GreedyDim(w))
			}
		} else {
			d = uint8(core.GreedyDim(w))
		}
		if d == 0 {
			mTableRoutes.Inc()
			mTableSteps.Add(uint64(len(dst) - mark))
			return dst, true
		}
		dst = append(dst, t.exp[d]...)
		j := int(d) - 1
		rank += perm.RankSwapUpdate(w, dig, 0, j)
		w[0], w[j] = w[j], w[0]
	}
}
