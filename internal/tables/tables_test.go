package tables

import (
	"math/rand"
	"testing"

	"supercayley/internal/core"
	"supercayley/internal/gens"
	"supercayley/internal/perm"
)

// tenNetworks instantiates one small network per family (k = 5,
// N = 120, exhaustively checkable).
func tenNetworks(t *testing.T) []*core.Network {
	t.Helper()
	nws := make([]*core.Network, 0, len(core.Families))
	for _, f := range core.Families {
		if f == core.IS {
			nw, err := core.NewIS(5)
			if err != nil {
				t.Fatalf("NewIS(5): %v", err)
			}
			nws = append(nws, nw)
			continue
		}
		nw, err := core.New(f, 2, 2)
		if err != nil {
			t.Fatalf("New(%s, 2, 2): %v", f, err)
		}
		nws = append(nws, nw)
	}
	return nws
}

// TestDenseDifferentialTenFamilies asserts table-mode routes are
// port-identical to the RouteInto kernel for EVERY quotient of every
// family — the correctness contract of the whole package.
func TestDenseDifferentialTenFamilies(t *testing.T) {
	for _, nw := range tenNetworks(t) {
		tab, err := Build(nw, Config{Mode: ModeDense})
		if err != nil {
			t.Fatalf("%s: Build: %v", nw.Name(), err)
		}
		diffAllQuotients(t, nw, tab)
	}
}

// TestBandedDifferentialTenFamilies does the same through the banded
// walk with tiny bands (so the walk crosses band boundaries and
// faults constantly) under both fault policies.
func TestBandedDifferentialTenFamilies(t *testing.T) {
	for _, nw := range tenNetworks(t) {
		for _, policy := range []FaultPolicy{FaultBuild, FaultDecline} {
			tab, err := Build(nw, Config{Mode: ModeBanded, BandBits: 3, Policy: policy})
			if err != nil {
				t.Fatalf("%s: Build banded: %v", nw.Name(), err)
			}
			if policy == FaultDecline {
				// Build half the bands; declined starts are fine, the
				// covered starts must still cross absent bands mid-walk.
				if err := tab.Prebuild(0, tab.numBands()/2); err != nil {
					t.Fatalf("%s: Prebuild: %v", nw.Name(), err)
				}
			}
			diffAllQuotients(t, nw, tab)
		}
	}
}

func diffAllQuotients(t *testing.T, nw *core.Network, tab *Table) {
	t.Helper()
	k := nw.K()
	s := core.NewRouteScratch(k)
	id := perm.Identity(k)
	w := make(perm.Perm, k)
	want := make([]gens.GenIndex, 0, 256)
	got := make([]gens.GenIndex, 0, 256)
	declined := 0
	perm.All(k, func(q perm.Perm) bool {
		// Kernel route of quotient q: RouteInto(q, identity) since
		// id⁻¹∘q = q.
		want = nw.RouteInto(want[:0], q, id, s)
		copy(w, q)
		var ok bool
		got, ok = tab.AppendQuotientRoute(got[:0], w)
		if !ok {
			if tab.Policy() != FaultDecline {
				t.Fatalf("%s: table declined quotient %v under policy %v", nw.Name(), q, tab.Policy())
			}
			declined++
			return true
		}
		if len(got) != len(want) {
			t.Fatalf("%s: quotient %v: table route %d steps, kernel %d", nw.Name(), q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: quotient %v: port %d is %d, kernel %d", nw.Name(), q, i, got[i], want[i])
			}
		}
		// w is scratch on success: the digits walk consumes it to the
		// identity, the fast-lane chase leaves it untouched.  Anything
		// else means the walk corrupted its input.
		if !w.IsIdentity() && !w.Equal(q) {
			t.Fatalf("%s: quotient %v left as %v (neither identity nor untouched)", nw.Name(), q, w)
		}
		return true
	})
	if tab.Policy() == FaultDecline && tab.Mode() == ModeBanded {
		if declined == 0 {
			t.Fatalf("%s: FaultDecline table with half coverage declined nothing", nw.Name())
		}
	} else if declined != 0 {
		t.Fatalf("%s: %d declines from a full-coverage table", nw.Name(), declined)
	}
}

// TestRouterFallThrough wires a table into CachedRouter and checks
// end-to-end pair routes against a table-less router, plus the
// decline → LRU → kernel path.
func TestRouterFallThrough(t *testing.T) {
	nw := core.MustNew(core.MS, 2, 2)
	tab, err := Build(nw, Config{Mode: ModeBanded, BandBits: 4, Policy: FaultDecline})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	withTable, err := core.NewCachedRouterWithTable(nw, core.CacheConfig{}, core.TableConfig{Table: tab})
	if err != nil {
		t.Fatalf("NewCachedRouterWithTable: %v", err)
	}
	plain := core.NewCachedRouter(nw, core.CacheConfig{})
	r := rand.New(rand.NewSource(7))
	n := nw.N()
	for trial := 0; trial < 2000; trial++ {
		src, dst := r.Int63n(n), r.Int63n(n)
		a, err := withTable.AppendRouteRanks(nil, src, dst)
		if err != nil {
			t.Fatalf("table route %d→%d: %v", src, dst, err)
		}
		b, err := plain.AppendRouteRanks(nil, src, dst)
		if err != nil {
			t.Fatalf("plain route %d→%d: %v", src, dst, err)
		}
		if len(a) != len(b) {
			t.Fatalf("route %d→%d: %d steps with table, %d without", src, dst, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("route %d→%d: port %d differs (%d vs %d)", src, dst, i, a[i], b[i])
			}
		}
	}
}

// TestRankLaneDifferentialTenFamilies drives the rank-addressed fast
// lane (perm slab + successor chase, no UnrankInto) through
// CachedRouter for EVERY (src, dst) pair of every family and checks
// the routes against a table-less router.
func TestRankLaneDifferentialTenFamilies(t *testing.T) {
	for _, nw := range tenNetworks(t) {
		tab, err := Build(nw, Config{Mode: ModeDense})
		if err != nil {
			t.Fatalf("%s: Build: %v", nw.Name(), err)
		}
		if _, ok := tab.AppendRouteRanks(nil, 0, 0); !ok {
			t.Fatalf("%s: dense table at k=%d has no rank lane", nw.Name(), nw.K())
		}
		withTable, err := core.NewCachedRouterWithTable(nw, core.CacheConfig{}, core.TableConfig{Table: tab})
		if err != nil {
			t.Fatalf("%s: NewCachedRouterWithTable: %v", nw.Name(), err)
		}
		plain := core.NewCachedRouter(nw, core.CacheConfig{})
		n := nw.N()
		var a, b []gens.GenIndex
		for src := int64(0); src < n; src++ {
			for dst := int64(0); dst < n; dst++ {
				var err error
				if a, err = withTable.AppendRouteRanks(a[:0], src, dst); err != nil {
					t.Fatalf("%s: table route %d→%d: %v", nw.Name(), src, dst, err)
				}
				if b, err = plain.AppendRouteRanks(b[:0], src, dst); err != nil {
					t.Fatalf("%s: plain route %d→%d: %v", nw.Name(), src, dst, err)
				}
				if len(a) != len(b) {
					t.Fatalf("%s: route %d→%d: %d steps with table, %d without", nw.Name(), src, dst, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("%s: route %d→%d: port %d differs (%d vs %d)", nw.Name(), src, dst, i, a[i], b[i])
					}
				}
			}
		}
	}
}

// TestUseTableValidation rejects mismatched tables.
func TestUseTableValidation(t *testing.T) {
	ms := core.MustNew(core.MS, 2, 2)
	rs := core.MustNew(core.RS, 2, 2)
	tab, err := Build(ms, Config{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	cr := core.NewCachedRouter(rs, core.CacheConfig{})
	if err := cr.UseTable(tab); err == nil {
		t.Fatalf("UseTable accepted an MS table on an RS router")
	}
	cr = core.NewCachedRouter(ms, core.CacheConfig{})
	if err := cr.UseTable(tab); err != nil {
		t.Fatalf("UseTable rejected its own table: %v", err)
	}
	if cr.Table() != tab {
		t.Fatalf("Table() did not return the installed table")
	}
	if err := cr.UseTable(nil); err != nil || cr.Table() != nil {
		t.Fatalf("UseTable(nil) did not clear the table")
	}
}

// TestBuildModes exercises mode selection and caps.
func TestBuildModes(t *testing.T) {
	nw := core.MustNew(core.MS, 2, 2)
	tab, err := Build(nw, Config{})
	if err != nil {
		t.Fatalf("auto build: %v", err)
	}
	if tab.Mode() != ModeDense {
		t.Fatalf("auto mode at k=5 picked %v, want dense", tab.Mode())
	}
	// Dense at k ≤ FastLaneMaxK: dims (1 byte/rank) plus the fast lane —
	// rank→perm slab (k bytes/rank) and successor ranks (4 bytes/rank).
	if want := nw.N() * int64(5+nw.K()); tab.Bytes() != want {
		t.Fatalf("dense table %d bytes, want %d", tab.Bytes(), want)
	}
	if tab.N() != nw.N() || tab.K() != nw.K() || tab.Name() != nw.Name() {
		t.Fatalf("table metadata mismatch: %v", tab.Stats())
	}
	if tab.BuildTime() <= 0 {
		t.Fatalf("dense build reported no build time")
	}
	if _, err := Build(nw, Config{BandBits: 31}); err == nil {
		t.Fatalf("accepted absurd band bits")
	}
}

// TestBandedFaultAccounting checks fault/build counters and resident
// bytes under on-demand growth.
func TestBandedFaultAccounting(t *testing.T) {
	nw := core.MustNew(core.RR, 2, 2)
	tab, err := Build(nw, Config{Mode: ModeBanded, BandBits: 4, Policy: FaultBuild})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if tab.Bytes() != 0 || tab.Stats().BandsBuilt != 0 {
		t.Fatalf("banded table born with resident state: %v", tab.Stats())
	}
	w := perm.Unrank(nw.K(), nw.N()-1)
	if _, ok := tab.AppendQuotientRoute(nil, w); !ok {
		t.Fatalf("FaultBuild declined")
	}
	st := tab.Stats()
	if st.BandFaults == 0 || st.BandsBuilt == 0 || st.Bytes == 0 {
		t.Fatalf("fault did not materialize a band: %+v", st)
	}
	// Full prebuild must make residency exactly n bytes.
	if err := tab.Prebuild(0, tab.numBands()); err != nil {
		t.Fatalf("Prebuild: %v", err)
	}
	if tab.Bytes() != nw.N() {
		t.Fatalf("fully built banded table %d bytes, want %d", tab.Bytes(), nw.N())
	}
}
