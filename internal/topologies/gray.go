package topologies

import "fmt"

// MixedGray implements the reflected mixed-radix Gray code over a
// radix vector m₀, m₁, … (index 0 least significant): consecutive
// integers map to digit tuples differing in exactly one digit, by ±1.
//
// It is used to fold a multi-dimensional mesh into a 2-D mesh (and a
// path) without losing adjacency: a ±1 step in the folded index is a
// ±1 step in one digit of the original mesh (Corollary 6's m₁×m₂ mesh
// is realized this way on top of the 2×3×…×k factorial mesh).
type MixedGray struct {
	radices []int
	weights []int
	order   int
}

// NewMixedGray builds the code for the given radices (each ≥ 1).
func NewMixedGray(radices ...int) (*MixedGray, error) {
	if len(radices) == 0 {
		return nil, fmt.Errorf("topologies: gray code needs at least one radix")
	}
	weights := make([]int, len(radices))
	order := 1
	for i, m := range radices {
		if m < 1 {
			return nil, fmt.Errorf("topologies: radix %d is %d", i, m)
		}
		weights[i] = order
		if order > (1<<31)/m {
			return nil, fmt.Errorf("topologies: gray code too large")
		}
		order *= m
	}
	return &MixedGray{radices: append([]int(nil), radices...), weights: weights, order: order}, nil
}

// MustNewMixedGray panics on error.
func MustNewMixedGray(radices ...int) *MixedGray {
	g, err := NewMixedGray(radices...)
	if err != nil {
		panic(err)
	}
	return g
}

// Order returns the product of the radices.
func (g *MixedGray) Order() int { return g.order }

// Digits returns the Gray digit tuple of x ∈ [0, Order): the raw
// positional digit of x at position i, reflected whenever the raw
// prefix above position i is odd.
func (g *MixedGray) Digits(x int) []int {
	if x < 0 || x >= g.order {
		panic(fmt.Sprintf("topologies: gray index %d out of range [0,%d)", x, g.order))
	}
	out := make([]int, len(g.radices))
	for i := range g.radices {
		raw := (x / g.weights[i]) % g.radices[i]
		prefix := x / (g.weights[i] * g.radices[i])
		if prefix%2 == 1 {
			out[i] = g.radices[i] - 1 - raw
		} else {
			out[i] = raw
		}
	}
	return out
}

// Rank is the inverse of Digits.
func (g *MixedGray) Rank(digits []int) int {
	if len(digits) != len(g.radices) {
		panic("topologies: gray digit count mismatch")
	}
	// Recover raw digits from most significant downwards: the prefix
	// (in raw form) determines whether the current digit is reflected.
	x := 0
	prefix := 0 // raw value of all more-significant digits
	for i := len(g.radices) - 1; i >= 0; i-- {
		d := digits[i]
		raw := d
		if prefix%2 == 1 {
			raw = g.radices[i] - 1 - d
		}
		if raw < 0 || raw >= g.radices[i] {
			panic(fmt.Sprintf("topologies: gray digit %d out of range", i))
		}
		x += raw * g.weights[i]
		prefix = prefix*g.radices[i] + raw
	}
	return x
}
