package topologies

import (
	"fmt"

	"supercayley/internal/perm"
)

// TNHamiltonianPath returns a Hamiltonian path of the k-dimensional
// transposition network: an ordering of all k! permutations in which
// consecutive permutations differ by exactly one symbol transposition
// (one k-TN link).  It walks the 2×3×…×k factorial mesh along the
// reflected mixed-radix Gray sequence: each ±1 digit step swaps two
// symbols, witnessing the "rich topology" the paper cites k-TN for.
func TNHamiltonianPath(k int) ([]perm.Perm, error) {
	if k < 2 || k > 9 {
		return nil, fmt.Errorf("topologies: Hamiltonian path k=%d out of range [2,9]", k)
	}
	mesh, err := NewFactorialMesh(k)
	if err != nil {
		return nil, err
	}
	gray, err := NewMixedGray(mesh.Dims()...)
	if err != nil {
		return nil, err
	}
	path := make([]perm.Perm, gray.Order())
	for x := 0; x < gray.Order(); x++ {
		path[x] = mesh.MeshToPerm(mesh.ID(gray.Digits(x)))
	}
	return path, nil
}

// StarHamiltonianWalk returns the same Gray ordering interpreted in
// the k-star: consecutive permutations are at star distance at most 3,
// giving a load-1 traversal of all k! nodes by constant-length hops
// (the dilation-3 path embedding behind Corollary 6's m₁×m₂ meshes
// with m₂ = 1).
func StarHamiltonianWalk(k int) ([]perm.Perm, error) {
	return TNHamiltonianPath(k)
}
