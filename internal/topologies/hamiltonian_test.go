package topologies

import (
	"testing"

	"supercayley/internal/perm"
)

func TestTNHamiltonianPath(t *testing.T) {
	for k := 2; k <= 6; k++ {
		path, err := TNHamiltonianPath(k)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(path)) != perm.Factorial(k) {
			t.Fatalf("k=%d: path length %d, want %d", k, len(path), perm.Factorial(k))
		}
		seen := make(map[int64]bool, len(path))
		for i, p := range path {
			if !p.Valid() {
				t.Fatalf("k=%d: invalid permutation at %d", k, i)
			}
			r := p.Rank()
			if seen[r] {
				t.Fatalf("k=%d: permutation repeated at %d", k, i)
			}
			seen[r] = true
			if i == 0 {
				continue
			}
			// Consecutive entries must differ by one transposition:
			// exactly two positions differ, with swapped symbols.
			diff := 0
			var a, b int
			prev := path[i-1]
			for j := range p {
				if p[j] != prev[j] {
					diff++
					if diff == 1 {
						a = j
					} else {
						b = j
					}
				}
			}
			if diff != 2 || prev[a] != p[b] || prev[b] != p[a] {
				t.Fatalf("k=%d: step %d is not a single transposition: %v -> %v", k, i, prev, p)
			}
		}
	}
}

func TestStarHamiltonianWalkBoundedHops(t *testing.T) {
	path, err := StarHamiltonianWalk(5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(path); i++ {
		d := path[i].Inverse().Compose(path[i-1]).StarDistance()
		if d < 1 || d > 3 {
			t.Fatalf("step %d has star distance %d", i, d)
		}
	}
}

func TestTNHamiltonianPathBounds(t *testing.T) {
	if _, err := TNHamiltonianPath(1); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := TNHamiltonianPath(10); err == nil {
		t.Error("k=10 accepted")
	}
}
