// Package topologies implements the guest networks the paper embeds
// into super Cayley graphs (Section 5): hypercubes, meshes (including
// the 2×3×…×k factorial mesh), complete binary trees, bubble-sort
// graphs, transposition networks, and rotator graphs.
package topologies

import (
	"fmt"
)

// Hypercube is the d-dimensional binary hypercube Q_d: 2^d nodes,
// neighbors differ in exactly one bit.
type Hypercube struct {
	d   int
	buf []int
}

// NewHypercube returns Q_d, 0 ≤ d ≤ 30.
func NewHypercube(d int) (*Hypercube, error) {
	if d < 0 || d > 30 {
		return nil, fmt.Errorf("topologies: hypercube dimension %d out of range [0,30]", d)
	}
	return &Hypercube{d: d, buf: make([]int, d)}, nil
}

// MustNewHypercube is NewHypercube but panics on error.
func MustNewHypercube(d int) *Hypercube {
	h, err := NewHypercube(d)
	if err != nil {
		panic(err)
	}
	return h
}

// Name returns e.g. "Q5".
func (h *Hypercube) Name() string { return fmt.Sprintf("Q%d", h.d) }

// D returns the dimension.
func (h *Hypercube) D() int { return h.d }

// Order returns 2^d.
func (h *Hypercube) Order() int { return 1 << h.d }

// Degree returns d.
func (h *Hypercube) Degree() int { return h.d }

// Diameter returns d.
func (h *Hypercube) Diameter() int { return h.d }

// Neighbors returns the d bit-flip neighbors of v.  The slice is
// reused across calls.
func (h *Hypercube) Neighbors(v int) []int {
	for b := 0; b < h.d; b++ {
		h.buf[b] = v ^ (1 << b)
	}
	return h.buf
}

// Distance returns the Hamming distance between u and v.
func (h *Hypercube) Distance(u, v int) int {
	x := uint(u ^ v)
	d := 0
	for x != 0 {
		x &= x - 1
		d++
	}
	return d
}

// GrayCode returns the i-th reflected binary Gray code word.
// Consecutive words differ in exactly one bit, so the Gray sequence
// walks a Hamiltonian path of the hypercube.
func GrayCode(i int) int { return i ^ (i >> 1) }

// GrayRank is the inverse of GrayCode.
func GrayRank(g int) int {
	r := 0
	for g != 0 {
		r ^= g
		g >>= 1
	}
	return r
}
