package topologies

import (
	"fmt"
	"strings"

	"supercayley/internal/perm"
)

// Mesh is a multi-dimensional mesh (grid without wraparound) with
// per-dimension sizes dims[0] × dims[1] × … .  Node IDs are mixed
// radix: id = c₀ + c₁·dims[0] + c₂·dims[0]dims[1] + … .
type Mesh struct {
	dims    []int
	strides []int
	order   int
	buf     []int
}

// NewMesh builds a mesh with the given dimension sizes (each ≥ 1).
func NewMesh(dims ...int) (*Mesh, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("topologies: mesh needs at least one dimension")
	}
	order := 1
	strides := make([]int, len(dims))
	for i, d := range dims {
		if d < 1 {
			return nil, fmt.Errorf("topologies: mesh dimension %d has size %d", i, d)
		}
		strides[i] = order
		if order > (1<<31)/d {
			return nil, fmt.Errorf("topologies: mesh too large")
		}
		order *= d
	}
	return &Mesh{
		dims:    append([]int(nil), dims...),
		strides: strides,
		order:   order,
		buf:     make([]int, 0, 2*len(dims)),
	}, nil
}

// MustNewMesh is NewMesh but panics on error.
func MustNewMesh(dims ...int) *Mesh {
	m, err := NewMesh(dims...)
	if err != nil {
		panic(err)
	}
	return m
}

// NewFactorialMesh returns the 2×3×4×…×k mesh of Corollary 7, whose
// k!/1! nodes biject with the permutations of 1..k via the factorial
// number system (see MeshToPerm / PermToMesh).
func NewFactorialMesh(k int) (*Mesh, error) {
	if k < 2 || k > 12 {
		return nil, fmt.Errorf("topologies: factorial mesh k=%d out of range [2,12]", k)
	}
	dims := make([]int, 0, k-1)
	for d := 2; d <= k; d++ {
		dims = append(dims, d)
	}
	return NewMesh(dims...)
}

// Name returns e.g. "mesh(2x3x4)".
func (m *Mesh) Name() string {
	parts := make([]string, len(m.dims))
	for i, d := range m.dims {
		parts[i] = fmt.Sprintf("%d", d)
	}
	return "mesh(" + strings.Join(parts, "x") + ")"
}

// Dims returns a copy of the dimension sizes.
func (m *Mesh) Dims() []int { return append([]int(nil), m.dims...) }

// Order returns the number of nodes.
func (m *Mesh) Order() int { return m.order }

// Coords decodes a node ID into coordinates.
func (m *Mesh) Coords(v int) []int {
	c := make([]int, len(m.dims))
	for i, d := range m.dims {
		c[i] = v % d
		v /= d
	}
	return c
}

// ID encodes coordinates into a node ID.
func (m *Mesh) ID(coords []int) int {
	v := 0
	for i, c := range coords {
		if c < 0 || c >= m.dims[i] {
			panic(fmt.Sprintf("topologies: coordinate %d=%d out of range [0,%d)", i, c, m.dims[i]))
		}
		v += c * m.strides[i]
	}
	return v
}

// Neighbors returns the mesh neighbors of v (±1 per dimension,
// without wraparound).  The slice is reused across calls.
func (m *Mesh) Neighbors(v int) []int {
	m.buf = m.buf[:0]
	rest := v
	for i, d := range m.dims {
		c := rest % d
		rest /= d
		if c > 0 {
			m.buf = append(m.buf, v-m.strides[i])
		}
		if c < d-1 {
			m.buf = append(m.buf, v+m.strides[i])
		}
	}
	return m.buf
}

// Distance returns the L1 distance between two nodes.
func (m *Mesh) Distance(u, v int) int {
	d := 0
	for _, size := range m.dims {
		cu, cv := u%size, v%size
		u, v = u/size, v/size
		if cu > cv {
			d += cu - cv
		} else {
			d += cv - cu
		}
	}
	return d
}

// Diameter returns Σ (dimᵢ − 1).
func (m *Mesh) Diameter() int {
	d := 0
	for _, size := range m.dims {
		d += size - 1
	}
	return d
}

// MeshToPerm maps a factorial-mesh node to a permutation of 1..k via
// the factorial number system: the mesh coordinates (c₀..c₍k₋₂₎) with
// cᵢ ∈ {0..i+1} are read as the Lehmer digits of the permutation
// (most significant digit = c₍k₋₂₎).  This is the load-1 expansion-1
// bijection behind Corollary 7.
func (m *Mesh) MeshToPerm(v int) perm.Perm {
	k := len(m.dims) + 1
	coords := m.Coords(v)
	var rank int64
	for i := k - 2; i >= 0; i-- {
		// coords[i] ∈ [0, i+2): digit with weight (i+1)!.
		rank += int64(coords[i]) * perm.Factorial(i+1)
	}
	return perm.Unrank(k, rank)
}

// PermToMesh is the inverse of MeshToPerm.
func (m *Mesh) PermToMesh(p perm.Perm) int {
	k := len(m.dims) + 1
	if p.K() != k {
		panic(fmt.Sprintf("topologies: PermToMesh wants %d symbols, got %d", k, p.K()))
	}
	rank := p.Rank()
	coords := make([]int, k-1)
	for i := k - 2; i >= 0; i-- {
		f := perm.Factorial(i + 1)
		coords[i] = int(rank / f)
		rank %= f
	}
	return m.ID(coords)
}
