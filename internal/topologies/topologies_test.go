package topologies

import (
	"math/rand"
	"testing"

	"supercayley/internal/graph"
	"supercayley/internal/perm"
)

func TestHypercubeBasics(t *testing.T) {
	h := MustNewHypercube(4)
	if h.Order() != 16 || h.Degree() != 4 || h.Diameter() != 4 || h.Name() != "Q4" {
		t.Fatalf("Q4 params wrong")
	}
	if _, err := NewHypercube(-1); err == nil {
		t.Error("Q(-1) accepted")
	}
	if _, err := NewHypercube(31); err == nil {
		t.Error("Q31 accepted")
	}
	mat := graph.Materialize(h)
	if d := graph.Diameter(mat); d != 4 {
		t.Fatalf("BFS diameter %d", d)
	}
	if !graph.IsUndirected(mat) || !graph.LooksVertexSymmetric(mat, 8) {
		t.Fatal("Q4 structure wrong")
	}
	if h.Distance(0b0101, 0b1100) != 2 {
		t.Fatal("Hamming distance wrong")
	}
}

func TestGrayCode(t *testing.T) {
	for i := 0; i < 256; i++ {
		if GrayRank(GrayCode(i)) != i {
			t.Fatalf("GrayRank(GrayCode(%d)) != %d", i, i)
		}
	}
	h := MustNewHypercube(8)
	for i := 1; i < 256; i++ {
		if h.Distance(GrayCode(i-1), GrayCode(i)) != 1 {
			t.Fatalf("Gray neighbors %d,%d not adjacent", i-1, i)
		}
	}
}

func TestMeshBasics(t *testing.T) {
	m := MustNewMesh(3, 4, 2)
	if m.Order() != 24 || m.Diameter() != 2+3+1 {
		t.Fatalf("mesh params wrong: %d %d", m.Order(), m.Diameter())
	}
	if m.Name() != "mesh(3x4x2)" {
		t.Fatalf("name %q", m.Name())
	}
	if _, err := NewMesh(); err == nil {
		t.Error("empty mesh accepted")
	}
	if _, err := NewMesh(0); err == nil {
		t.Error("zero-size mesh accepted")
	}
	// Coords/ID round trip.
	for v := 0; v < m.Order(); v++ {
		if m.ID(m.Coords(v)) != v {
			t.Fatalf("coords round-trip failed for %d", v)
		}
	}
	// BFS diameter matches formula.
	if d := graph.Diameter(graph.Materialize(m)); d != m.Diameter() {
		t.Fatalf("BFS diameter %d, want %d", d, m.Diameter())
	}
	// L1 distance matches BFS from node 0.
	dist := graph.BFS(m, 0)
	for v := 0; v < m.Order(); v++ {
		if dist[v] != m.Distance(0, v) {
			t.Fatalf("distance mismatch at %d", v)
		}
	}
}

func TestMeshNeighborsSymmetric(t *testing.T) {
	m := MustNewMesh(4, 3)
	mat := graph.Materialize(m)
	if !graph.IsUndirected(mat) {
		t.Fatal("mesh should be undirected")
	}
	// Corner has 2 neighbors, center has 4.
	if len(mat.Neighbors(0)) != 2 {
		t.Fatal("corner degree wrong")
	}
	if len(mat.Neighbors(m.ID([]int{1, 1}))) != 4 {
		t.Fatal("center degree wrong")
	}
}

func TestFactorialMeshBijection(t *testing.T) {
	for k := 2; k <= 6; k++ {
		m, err := NewFactorialMesh(k)
		if err != nil {
			t.Fatal(err)
		}
		if int64(m.Order()) != perm.Factorial(k) {
			t.Fatalf("factorial mesh order %d, want %d", m.Order(), perm.Factorial(k))
		}
		seen := make(map[int64]bool)
		for v := 0; v < m.Order(); v++ {
			p := m.MeshToPerm(v)
			if !p.Valid() {
				t.Fatalf("MeshToPerm(%d) invalid", v)
			}
			r := p.Rank()
			if seen[r] {
				t.Fatalf("MeshToPerm not injective at %d", v)
			}
			seen[r] = true
			if m.PermToMesh(p) != v {
				t.Fatalf("PermToMesh round-trip failed at %d", v)
			}
		}
	}
}

func TestCompleteBinaryTree(t *testing.T) {
	tr := MustNewCompleteBinaryTree(3)
	if tr.Order() != 15 || tr.Diameter() != 6 || tr.Name() != "CBT(3)" {
		t.Fatalf("CBT params wrong")
	}
	if _, err := NewCompleteBinaryTree(-1); err == nil {
		t.Error("negative height accepted")
	}
	mat := graph.Materialize(tr)
	if !graph.IsUndirected(mat) {
		t.Fatal("tree should be undirected")
	}
	if d := graph.Diameter(mat); d != 6 {
		t.Fatalf("diameter %d", d)
	}
	// Root degree 2, leaves degree 1, internal 3.
	if len(mat.Neighbors(0)) != 2 {
		t.Fatal("root degree")
	}
	if len(mat.Neighbors(14)) != 1 {
		t.Fatal("leaf degree")
	}
	if len(mat.Neighbors(1)) != 3 {
		t.Fatal("internal degree")
	}
	if tr.Level(0) != 0 || tr.Level(2) != 1 || tr.Level(14) != 3 {
		t.Fatal("levels wrong")
	}
}

func TestInorderIsPermutationWithDilation2InHypercube(t *testing.T) {
	// The inorder labeling embeds CBT(h) into Q_(h+1) with dilation 2.
	for h := 1; h <= 6; h++ {
		tr := MustNewCompleteBinaryTree(h)
		q := MustNewHypercube(h + 1)
		seen := make([]bool, tr.Order())
		for v := 0; v < tr.Order(); v++ {
			in := tr.Inorder(v)
			if in < 0 || in >= tr.Order() || seen[in] {
				t.Fatalf("h=%d inorder not a permutation at %d (got %d)", h, v, in)
			}
			seen[in] = true
		}
		for v := 1; v < tr.Order(); v++ {
			p := (v - 1) / 2
			if d := q.Distance(tr.Inorder(v), tr.Inorder(p)); d > 2 {
				t.Fatalf("h=%d tree edge (%d,%d) dilation %d > 2", h, p, v, d)
			}
		}
	}
}

func TestTranspositionNetwork(t *testing.T) {
	tn := MustNewTranspositionNetwork(5)
	if tn.Degree() != 10 || tn.Diameter() != 4 || tn.N() != 120 {
		t.Fatalf("5-TN params wrong")
	}
	if _, err := NewTranspositionNetwork(1); err == nil {
		t.Error("1-TN accepted")
	}
	cg, err := tn.Cayley(200)
	if err != nil {
		t.Fatal(err)
	}
	mat := graph.Materialize(cg)
	if d := graph.Diameter(mat); d != 4 {
		t.Fatalf("BFS diameter %d, want 4", d)
	}
	if deg, ok := graph.IsRegular(mat); !ok || deg != 10 {
		t.Fatal("5-TN regularity wrong")
	}
	// Exact distance formula vs BFS.
	dist := graph.BFS(mat, 0)
	id := perm.Identity(5)
	perm.All(5, func(p perm.Perm) bool {
		if dist[p.Rank()] != tn.Distance(p, id) {
			t.Fatalf("TN distance mismatch at %v: BFS %d formula %d", p, dist[p.Rank()], tn.Distance(p, id))
		}
		return true
	})
}

func TestTNRouteOptimal(t *testing.T) {
	tn := MustNewTranspositionNetwork(7)
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		u, v := perm.Random(r, 7), perm.Random(r, 7)
		seq := tn.Route(u, v)
		if len(seq) != tn.Distance(u, v) {
			t.Fatalf("TN route %d moves, distance %d", len(seq), tn.Distance(u, v))
		}
		cur := u.Clone()
		for _, g := range seq {
			cur = g.Apply(cur)
		}
		if !cur.Equal(v) {
			t.Fatalf("TN route from %v to %v ended at %v", u, v, cur)
		}
	}
}

func TestBubbleSortGraph(t *testing.T) {
	b := MustNewBubbleSort(5)
	if b.Degree() != 4 || b.Diameter() != 10 || b.N() != 120 {
		t.Fatal("bubble-sort params wrong")
	}
	if _, err := NewBubbleSort(1); err == nil {
		t.Error("1-bubble-sort accepted")
	}
	cg, err := b.Cayley(200)
	if err != nil {
		t.Fatal(err)
	}
	mat := graph.Materialize(cg)
	if d := graph.Diameter(mat); d != 10 {
		t.Fatalf("BFS diameter %d, want 10", d)
	}
	// Exact distance formula (inversions) vs BFS.
	dist := graph.BFS(mat, 0)
	id := perm.Identity(5)
	perm.All(5, func(p perm.Perm) bool {
		if dist[p.Rank()] != b.Distance(p, id) {
			t.Fatalf("bubble distance mismatch at %v", p)
		}
		return true
	})
}

func TestBubbleSortRouteOptimal(t *testing.T) {
	b := MustNewBubbleSort(6)
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		u, v := perm.Random(r, 6), perm.Random(r, 6)
		seq := b.Route(u, v)
		if len(seq) != b.Distance(u, v) {
			t.Fatalf("bubble route %d moves, distance %d", len(seq), b.Distance(u, v))
		}
		cur := u.Clone()
		for _, g := range seq {
			cur = g.Apply(cur)
		}
		if !cur.Equal(v) {
			t.Fatal("bubble route wrong destination")
		}
	}
}

func TestBubbleSortSubgraphOfTN(t *testing.T) {
	b := MustNewBubbleSort(5)
	tn := MustNewTranspositionNetwork(5)
	for _, g := range b.Set().Generators() {
		if tn.Set().IndexOfAction(g) < 0 {
			t.Fatalf("bubble generator %s not in TN", g.Name())
		}
	}
}

func TestRotatorGraph(t *testing.T) {
	r := MustNewRotator(5)
	if r.Degree() != 4 || r.N() != 120 {
		t.Fatal("rotator params wrong")
	}
	if _, err := NewRotator(1); err == nil {
		t.Error("1-rotator accepted")
	}
	cg, err := r.Cayley(200)
	if err != nil {
		t.Fatal(err)
	}
	mat := graph.Materialize(cg)
	// Corbett: the k-rotator has diameter k−1 and is strongly
	// connected but directed.
	if graph.IsUndirected(mat) {
		t.Fatal("rotator should be directed")
	}
	if d := graph.Diameter(mat); d != 4 {
		t.Fatalf("rotator diameter %d, want 4", d)
	}
	if s := graph.StatsFrom(mat, 0); !s.Connected {
		t.Fatal("rotator should be strongly connected")
	}
}

func TestMeshIDPanicsOutOfRange(t *testing.T) {
	m := MustNewMesh(2, 2)
	defer func() {
		if recover() == nil {
			t.Error("ID out of range did not panic")
		}
	}()
	m.ID([]int{2, 0})
}
