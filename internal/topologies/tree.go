package topologies

import (
	"fmt"
)

// CompleteBinaryTree is the complete binary tree of the given height:
// 2^(h+1) − 1 nodes.  Node IDs are heap indices 0..2^(h+1)−2 (root 0,
// children of v at 2v+1 and 2v+2).
type CompleteBinaryTree struct {
	height int
	order  int
	buf    []int
}

// NewCompleteBinaryTree returns the tree of the given height ≥ 0.
func NewCompleteBinaryTree(height int) (*CompleteBinaryTree, error) {
	if height < 0 || height > 28 {
		return nil, fmt.Errorf("topologies: tree height %d out of range [0,28]", height)
	}
	return &CompleteBinaryTree{
		height: height,
		order:  (1 << (height + 1)) - 1,
		buf:    make([]int, 0, 3),
	}, nil
}

// MustNewCompleteBinaryTree is NewCompleteBinaryTree but panics on error.
func MustNewCompleteBinaryTree(height int) *CompleteBinaryTree {
	t, err := NewCompleteBinaryTree(height)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns e.g. "CBT(5)".
func (t *CompleteBinaryTree) Name() string { return fmt.Sprintf("CBT(%d)", t.height) }

// Height returns the tree height.
func (t *CompleteBinaryTree) Height() int { return t.height }

// Order returns 2^(h+1) − 1.
func (t *CompleteBinaryTree) Order() int { return t.order }

// Diameter returns 2·height.
func (t *CompleteBinaryTree) Diameter() int { return 2 * t.height }

// Neighbors returns parent and children of v.  The slice is reused
// across calls.
func (t *CompleteBinaryTree) Neighbors(v int) []int {
	t.buf = t.buf[:0]
	if v > 0 {
		t.buf = append(t.buf, (v-1)/2)
	}
	if c := 2*v + 1; c < t.order {
		t.buf = append(t.buf, c)
	}
	if c := 2*v + 2; c < t.order {
		t.buf = append(t.buf, c)
	}
	return t.buf
}

// Level returns the depth of node v (root = 0).
func (t *CompleteBinaryTree) Level(v int) int {
	level := 0
	for v > 0 {
		v = (v - 1) / 2
		level++
	}
	return level
}

// Inorder returns the inorder index of node v (heap index), i.e. the
// position of v in an inorder traversal.  The classic dilation-2
// embedding of the complete binary tree into the hypercube Q_(h+1)
// maps node v to its inorder index: tree edges then connect numbers at
// Hamming distance ≤ 2.
func (t *CompleteBinaryTree) Inorder(v int) int {
	// Iterative inorder rank: at depth d (leaves at depth h), the
	// subtree below v spans a contiguous inorder interval; v sits at
	// its midpoint.
	lo, hi := 0, t.order-1
	cur := 0
	for {
		mid := (lo + hi) / 2
		if cur == v {
			return mid
		}
		if isInSubtree(v, 2*cur+1, t.order) {
			cur = 2*cur + 1
			hi = mid - 1
		} else {
			cur = 2*cur + 2
			lo = mid + 1
		}
	}
}

// isInSubtree reports whether v lies in the heap subtree rooted at r.
func isInSubtree(v, r, order int) bool {
	for v < order && v >= 0 {
		if v == r {
			return true
		}
		if v < r {
			return false
		}
		v = (v - 1) / 2
	}
	return false
}
